package psp

import (
	"net"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/faults"
	"repro/internal/proto"
)

func newUDPServer(t *testing.T) *UDPServer {
	t.Helper()
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			n := copy(r, p)
			return n, proto.StatusOK
		}),
		DARC: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { u.Close() })
	return u
}

func udpClient(t *testing.T, server *net.UDPAddr) *net.UDPConn {
	t.Helper()
	conn, err := net.DialUDP("udp", nil, server)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestUDPRoundTrip(t *testing.T) {
	u := newUDPServer(t)
	conn := udpClient(t, u.Addr())

	payload := typedPayload(1, "ping")
	msg := proto.AppendMessage(nil, proto.Header{
		Kind:      proto.KindRequest,
		RequestID: 42,
	}, payload)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	h, body, err := proto.DecodeHeader(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != proto.KindResponse || h.RequestID != 42 || h.Status != proto.StatusOK {
		t.Fatalf("header %+v", h)
	}
	if string(body[2:]) != "ping" {
		t.Fatalf("body %q", body)
	}
	if u.Received() != 1 {
		t.Fatalf("received %d", u.Received())
	}
}

func TestUDPManyRequests(t *testing.T) {
	u := newUDPServer(t)
	conn := udpClient(t, u.Addr())
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			msg := proto.AppendMessage(nil, proto.Header{
				Kind:      proto.KindRequest,
				RequestID: uint64(i),
			}, typedPayload(i%2, "x"))
			conn.Write(msg) //nolint:errcheck
		}
	}()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 2048)
	seen := make(map[uint64]bool)
	// UDP may drop on loopback under pressure; require most to return.
	for len(seen) < n*9/10 {
		sz, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("after %d responses: %v", len(seen), err)
		}
		h, _, err := proto.DecodeHeader(buf[:sz])
		if err != nil {
			t.Fatal(err)
		}
		seen[h.RequestID] = true
	}
}

func TestUDPMalformedDatagramsDropped(t *testing.T) {
	u := newUDPServer(t)
	conn := udpClient(t, u.Addr())
	conn.Write([]byte("garbage"))              //nolint:errcheck
	conn.Write(make([]byte, proto.HeaderSize)) //nolint:errcheck // zero magic
	badKind := proto.AppendMessage(nil, proto.Header{Kind: proto.KindResponse}, nil)
	conn.Write(badKind) //nolint:errcheck
	// Then a good one to prove the server survived.
	good := proto.AppendMessage(nil, proto.Header{Kind: proto.KindRequest, RequestID: 7}, typedPayload(0, "ok"))
	conn.Write(good) //nolint:errcheck
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	sz, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	h, _, _ := proto.DecodeHeader(buf[:sz])
	if h.RequestID != 7 {
		t.Fatalf("unexpected response %+v", h)
	}
	if u.RxDrops() < 3 {
		t.Fatalf("rx drops %d, want >= 3", u.RxDrops())
	}
}

func newFaultyUDPServer(t *testing.T, prof *faults.Profile) *UDPServer {
	t.Helper()
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC:   cfg,
		Faults: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { u.Close() })
	return u
}

func TestUDPFaultDropAll(t *testing.T) {
	u := newFaultyUDPServer(t, &faults.Profile{Seed: 1, DropRate: 1})
	conn := udpClient(t, u.Addr())
	const n = 25
	for i := 0; i < n; i++ {
		msg := proto.AppendMessage(nil, proto.Header{Kind: proto.KindRequest, RequestID: uint64(i)}, typedPayload(0, "x"))
		conn.Write(msg) //nolint:errcheck
	}
	deadline := time.Now().Add(5 * time.Second)
	for u.Server.Injector().Counts().Drops < n {
		if time.Now().After(deadline) {
			t.Fatalf("injector dropped %d of %d", u.Server.Injector().Counts().Drops, n)
		}
		time.Sleep(time.Millisecond)
	}
	if u.Received() != 0 {
		t.Fatalf("received %d with 100%% drop", u.Received())
	}
	// No response must ever arrive.
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	if sz, err := conn.Read(make([]byte, 2048)); err == nil {
		t.Fatalf("got a %d-byte response despite 100%% ingress drop", sz)
	}
}

func TestUDPFaultDuplication(t *testing.T) {
	u := newFaultyUDPServer(t, &faults.Profile{Seed: 1, DupRate: 1})
	conn := udpClient(t, u.Addr())
	const n = 20
	buf := make([]byte, 2048)
	for i := 0; i < n; i++ {
		msg := proto.AppendMessage(nil, proto.Header{Kind: proto.KindRequest, RequestID: uint64(i)}, typedPayload(0, "dup"))
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Duplicate responses can satisfy the reads above before the net
	// worker has pulled every datagram off the socket, so wait for the
	// admission counter to catch up: every datagram admitted twice.
	deadline := time.Now().Add(5 * time.Second)
	for u.Received() < 2*n {
		if time.Now().After(deadline) {
			t.Fatalf("rx %d, want %d", u.Received(), 2*n)
		}
		time.Sleep(time.Millisecond)
	}
	if dups := u.Server.Injector().Counts().Dups; dups != n {
		t.Fatalf("injected %d dups, want %d", dups, n)
	}
}

func TestUDPRetryStampCounted(t *testing.T) {
	u := newUDPServer(t)
	conn := udpClient(t, u.Addr())
	// A request whose header status byte carries attempt number 2.
	msg := proto.AppendMessage(nil, proto.Header{
		Kind:      proto.KindRequest,
		Status:    proto.Status(2),
		RequestID: 5,
	}, typedPayload(0, "again"))
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := conn.Read(make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	if got := u.Server.StatsSnapshot().RetriesSeen; got != 1 {
		t.Fatalf("retries seen %d, want 1", got)
	}
}

func TestUDPDoubleCloseSafe(t *testing.T) {
	u := newUDPServer(t)
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
}
