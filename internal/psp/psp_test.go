package psp

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/proto"
	"repro/internal/spin"
)

// echoHandler responds with the payload and spins for a per-type
// duration.
type echoHandler struct {
	serviceByType []time.Duration
}

func (h *echoHandler) Handle(typ int, payload []byte, resp []byte) (int, proto.Status) {
	if typ >= 0 && typ < len(h.serviceByType) {
		spin.For(h.serviceByType[typ])
	}
	n := copy(resp, payload)
	return n, proto.StatusOK
}

// typedPayload builds a payload whose first two bytes carry the type.
func typedPayload(typ int, body string) []byte {
	p := make([]byte, 2+len(body))
	binary.LittleEndian.PutUint16(p, uint16(typ))
	copy(p[2:], body)
	return p
}

func newEchoServer(t *testing.T, workers int, mode Mode) *Server {
	t.Helper()
	spin.Calibrate(10 * time.Millisecond)
	cfg := darc.DefaultConfig(workers)
	cfg.MinWindowSamples = 64
	if workers < 2 {
		cfg.Spillway = 0
	}
	srv, err := NewServer(Config{
		Workers:    workers,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    &echoHandler{serviceByType: []time.Duration{5 * time.Microsecond, 200 * time.Microsecond}},
		Mode:       mode,
		DARC:       cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv
}

func TestConfigValidation(t *testing.T) {
	h := &echoHandler{}
	c := classify.Field{Offset: 0, Types: 1}
	cases := []Config{
		{Workers: 0, Classifier: c, Handler: h},
		{Workers: 1, Handler: h},
		{Workers: 1, Classifier: c},
		{Workers: 1, Classifier: classify.Field{Offset: 0, Types: 0}, Handler: h},
	}
	for i, cfg := range cases {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCallRoundTrip(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	resp, err := srv.Call(typedPayload(0, "hello"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusOK {
		t.Fatalf("status %v", resp.Status)
	}
	if string(resp.Payload[2:]) != "hello" {
		t.Fatalf("payload %q", resp.Payload)
	}
	if resp.Type != 0 {
		t.Fatalf("classified as %d", resp.Type)
	}
	if resp.Sojourn <= 0 {
		t.Fatal("no sojourn measured")
	}
}

func TestManyConcurrentCalls(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	const n = 500
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			typ := i % 2
			resp, err := srv.Call(typedPayload(typ, fmt.Sprintf("m%d", i)))
			if err != nil {
				errs <- err
				return
			}
			if resp.Status != proto.StatusOK || resp.Type != typ {
				errs <- fmt.Errorf("resp %+v", resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.StatsSnapshot()
	if st.Enqueued < n {
		t.Fatalf("enqueued %d, want >= %d", st.Enqueued, n)
	}
}

func TestUnknownTypeStillServed(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	// Type 9 is beyond the classifier's 2 types -> Unknown queue.
	resp, err := srv.Call(typedPayload(9, "mystery"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != classify.Unknown {
		t.Fatalf("type %d, want Unknown", resp.Type)
	}
	if resp.Status != proto.StatusOK {
		t.Fatalf("status %v", resp.Status)
	}
}

func TestShortPayloadIsUnknown(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	resp, err := srv.Call([]byte{0x01}) // too short for the field classifier
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != classify.Unknown {
		t.Fatalf("type %d", resp.Type)
	}
}

func TestDARCInstallsReservationUnderLoad(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	var wg sync.WaitGroup
	for i := 0; i < 300; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			srv.Call(typedPayload(i%2, "x")) //nolint:errcheck
		}(i)
		if i%50 == 49 {
			wg.Wait()
		}
	}
	wg.Wait()
	if srv.Controller().Reservation() == nil {
		t.Fatal("no reservation after 300 completions with MinWindowSamples=64")
	}
	st := srv.StatsSnapshot()
	if st.Updates == 0 {
		t.Fatal("no reservation updates counted")
	}
}

func TestCFCFSMode(t *testing.T) {
	srv := newEchoServer(t, 2, ModeCFCFS)
	for i := 0; i < 100; i++ {
		resp, err := srv.Call(typedPayload(i%2, "y"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != proto.StatusOK {
			t.Fatalf("status %v", resp.Status)
		}
	}
	if srv.Controller().Updates() != 0 {
		t.Fatal("c-FCFS mode performed reservation updates")
	}
}

func TestStopAnswersQueuedRequests(t *testing.T) {
	spin.Calibrate(10 * time.Millisecond)
	srv, err := NewServer(Config{
		Workers:    1,
		Classifier: classify.Field{Offset: 0, Types: 1},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			time.Sleep(10 * time.Millisecond) // slow worker
			return 0, proto.StatusOK
		}),
		DARC: func() darc.Config {
			c := darc.DefaultConfig(1)
			c.Spillway = 0
			return c
		}(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	// Fill the worker and queue a few more.
	chans := make([]<-chan Response, 0, 5)
	for i := 0; i < 5; i++ {
		ch, err := srv.Submit(typedPayload(0, "z"))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	time.Sleep(5 * time.Millisecond)
	srv.Stop()
	okCount, dropCount := 0, 0
	for _, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Status == proto.StatusOK {
				okCount++
			} else {
				dropCount++
			}
		case <-time.After(5 * time.Second):
			t.Fatal("request left unanswered after Stop")
		}
	}
	if okCount == 0 && dropCount == 0 {
		t.Fatal("no responses at all")
	}
	if okCount+dropCount != 5 {
		t.Fatalf("responses %d, want 5", okCount+dropCount)
	}
	// Submitting after stop fails.
	if _, err := srv.Submit(typedPayload(0, "late")); err == nil {
		t.Fatal("submit after stop accepted")
	}
}

func TestHandlerStatusPropagates(t *testing.T) {
	srv, err := NewServer(Config{
		Workers:    1,
		Classifier: classify.Field{Offset: 0, Types: 1},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return 0, proto.StatusError
		}),
		DARC: func() darc.Config {
			c := darc.DefaultConfig(1)
			c.Spillway = 0
			return c
		}(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	resp, err := srv.Call(typedPayload(0, "boom"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusError {
		t.Fatalf("status %v", resp.Status)
	}
}

func TestStatsSnapshot(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	for i := 0; i < 50; i++ {
		srv.Call(typedPayload(0, "s")) //nolint:errcheck
	}
	st := srv.StatsSnapshot()
	if st.Enqueued < 50 || st.Dispatched < 50 {
		t.Fatalf("stats %+v", st)
	}
	if len(st.Summaries) != 3 { // 2 types + aggregate
		t.Fatalf("summaries %d", len(st.Summaries))
	}
	if st.Summaries[0].Completed == 0 {
		t.Fatal("type 0 has no completions in summary")
	}
	if sd := srv.TypeSlowdown(0, 0.5); sd < 1 {
		t.Fatalf("median slowdown %g < 1", sd)
	}
}

func TestPinThreadsOption(t *testing.T) {
	srv, err := NewServer(Config{
		Workers:    1,
		Classifier: classify.Field{Offset: 0, Types: 1},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return 0, proto.StatusOK
		}),
		PinThreads: true,
		DARC: func() darc.Config {
			c := darc.DefaultConfig(1)
			c.Spillway = 0
			return c
		}(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	if _, err := srv.Call(typedPayload(0, "pinned")); err != nil {
		t.Fatal(err)
	}
}
