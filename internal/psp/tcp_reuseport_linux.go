//go:build linux

package psp

// soReusePort is SO_REUSEPORT, absent from the frozen stdlib syscall
// package on linux.
const soReusePort = 0xf
