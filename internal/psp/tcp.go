package psp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/proto"
)

// TCPServer exposes a Server over TCP — the stateful-dispatcher
// deployment the paper's §6 sketches. Each message is a 4-byte
// little-endian length prefix followed by the usual header+payload
// frame; responses are written back on the originating connection
// (serialized per connection, since multiple workers may complete
// requests from one client concurrently).
type TCPServer struct {
	Server *Server
	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	rx      atomic.Uint64
	rxDrops atomic.Uint64
}

// maxTCPFrame bounds a single framed message (header + payload).
const maxTCPFrame = 1 << 16

// ListenTCP binds addr and starts accepting connections on top of an
// already-configured (not yet started) Server.
func ListenTCP(addr string, srv *Server) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("psp: listen tcp %q: %w", addr, err)
	}
	t := &TCPServer{Server: srv, ln: ln}
	srv.Start()
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr reports the bound address.
func (t *TCPServer) Addr() net.Addr { return t.ln.Addr() }

// Received reports frames accepted into the pipeline.
func (t *TCPServer) Received() uint64 { return t.rx.Load() }

// RxDrops reports frames rejected at ingress.
func (t *TCPServer) RxDrops() uint64 { return t.rxDrops.Load() }

// Close stops accepting, closes the listener, and shuts the server
// down. Established connections terminate as their reads fail.
func (t *TCPServer) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	err := t.ln.Close()
	t.wg.Wait()
	t.Server.Stop()
	return err
}

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// serveConn is this connection's net worker: it frames requests into
// the shared dispatcher pipeline.
func (t *TCPServer) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	var writeMu sync.Mutex // serializes worker responses on this conn
	r := bufio.NewReaderSize(conn, 1<<16)
	var lenBuf [4]byte
	for {
		if t.closed.Load() {
			return
		}
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return
		}
		frameLen := binary.LittleEndian.Uint32(lenBuf[:])
		if frameLen < proto.HeaderSize || frameLen > maxTCPFrame {
			t.rxDrops.Add(1)
			return // protocol error: drop the connection
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(r, frame); err != nil {
			return
		}
		hdr, payload, perr := proto.DecodeHeader(frame)
		if perr != nil || hdr.Kind != proto.KindRequest {
			t.rxDrops.Add(1)
			continue
		}
		// Retry attempts ride in the request status byte (see proto).
		if hdr.Status != 0 {
			t.Server.noteRetry()
		}
		// Chaos layer: drop the frame as if the message never arrived.
		if t.Server.inj.IngressDrop() {
			continue
		}
		reqID := hdr.RequestID
		req := &Request{payload: payload}
		req.respond = func(resp Response) {
			// resp.Payload aliases the worker's scratch; the frame is
			// fully serialized before this callback returns.
			msg := proto.AppendResponse(make([]byte, 4, 4+proto.ResponseOverhead+len(resp.Payload)), proto.Header{
				Status:    resp.Status,
				TypeID:    uint16(resp.Type & 0xFFFF),
				RequestID: reqID,
			}, resp.Payload, proto.Timing{Queue: resp.QueueDelay, Service: resp.Service})
			binary.LittleEndian.PutUint32(msg[:4], uint32(len(msg)-4))
			writeMu.Lock()
			conn.Write(msg) //nolint:errcheck // client may have gone
			writeMu.Unlock()
		}
		if !t.Server.inject(req) {
			t.rxDrops.Add(1)
			continue
		}
		t.rx.Add(1)
		// Chaos layer: duplicated delivery of the same frame.
		if t.Server.inj.IngressDup() {
			dup := &Request{
				payload: append([]byte(nil), payload...),
				respond: req.respond,
			}
			if t.Server.inject(dup) {
				t.rx.Add(1)
			}
		}
	}
}

// TCPClient is a minimal synchronous client for the TCP transport,
// used by tests and examples. It is safe for concurrent Calls.
type TCPClient struct {
	conn net.Conn
	mu   sync.Mutex // guards writes and the pending map
	rd   *bufio.Reader
	rdMu sync.Mutex
	next atomic.Uint64

	pending map[uint64]chan Response
}

// DialTCP connects to a TCPServer.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{
		conn:    conn,
		rd:      bufio.NewReaderSize(conn, 1<<16),
		pending: make(map[uint64]chan Response),
	}
	go c.readLoop()
	return c, nil
}

// Close releases the connection; outstanding Calls fail.
func (c *TCPClient) Close() error {
	err := c.conn.Close()
	c.mu.Lock()
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	return err
}

// Call sends a request payload and waits for its response.
func (c *TCPClient) Call(payload []byte) (Response, error) {
	id := c.next.Add(1)
	ch := make(chan Response, 1)
	c.mu.Lock()
	c.pending[id] = ch
	msg := proto.AppendMessage(make([]byte, 4, 4+proto.HeaderSize+len(payload)), proto.Header{
		Kind:      proto.KindRequest,
		RequestID: id,
	}, payload)
	binary.LittleEndian.PutUint32(msg[:4], uint32(len(msg)-4))
	_, err := c.conn.Write(msg)
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Response{}, err
	}
	resp, ok := <-ch
	if !ok {
		return Response{}, fmt.Errorf("psp: connection closed")
	}
	return resp, nil
}

func (c *TCPClient) readLoop() {
	var lenBuf [4]byte
	for {
		c.rdMu.Lock()
		if _, err := io.ReadFull(c.rd, lenBuf[:]); err != nil {
			c.rdMu.Unlock()
			c.Close() //nolint:errcheck
			return
		}
		frameLen := binary.LittleEndian.Uint32(lenBuf[:])
		if frameLen < proto.HeaderSize || frameLen > maxTCPFrame {
			c.rdMu.Unlock()
			c.Close() //nolint:errcheck
			return
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(c.rd, frame); err != nil {
			c.rdMu.Unlock()
			c.Close() //nolint:errcheck
			return
		}
		c.rdMu.Unlock()
		hdr, payload, err := proto.DecodeHeader(frame)
		if err != nil || hdr.Kind != proto.KindResponse {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[hdr.RequestID]
		if ok {
			delete(c.pending, hdr.RequestID)
		}
		c.mu.Unlock()
		if ok {
			resp := Response{
				RequestID: hdr.RequestID,
				Type:      int(int16(hdr.TypeID)),
				Status:    hdr.Status,
				Payload:   append([]byte(nil), payload...),
			}
			if tm, has := proto.DecodeTiming(frame, hdr); has {
				resp.QueueDelay = tm.Queue
				resp.Service = tm.Service
			}
			ch <- resp
		}
	}
}
