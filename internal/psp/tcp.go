package psp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/spsc"
)

// The TCP datapath at parity with the sharded UDP path (§4.3.1's
// amortized packet path, on a byte stream): every message is a 4-byte
// little-endian length prefix followed by the usual header+payload
// frame, many requests ride in flight per connection (pipelining), and
// responses go back out-of-order as they complete, matched by the
// echoed header RequestID (plus the echoed correlation trailer for
// fan-out sub-requests).
//
//   - Ingress: per-connection readers decode *bursts* of frames into
//     pooled buffers and hand each burst to the dispatcher in a single
//     ring synchronization (injectBatch -> MPSC.TryPutBatch, one CAS).
//   - Egress: workers encode responses into the request's own ingress
//     buffer (zero-copy) and push the frame onto the connection's TX
//     ring; a per-connection TX goroutine drains the ring in batches
//     and lands each batch with a single vectored write (net.Buffers).
//     A full ring falls back to an inline write, never a blocked worker.
//   - Lifecycle: the accept path is sharded across Shards listeners
//     (SO_REUSEPORT on unix; a shared-listener fallback elsewhere),
//     admission is capped by MaxConns, idle connections are evicted
//     after IdleTimeout, and Close drains gracefully: every request
//     already accepted into the pipeline is answered and flushed
//     before the sockets die.

// maxTCPFrame bounds a single framed message (header + payload +
// trailers), excluding the length prefix.
const maxTCPFrame = 1 << 16

// tcpLenPrefixSize is the frame length prefix the stream transport
// puts in front of every proto message.
const tcpLenPrefixSize = 4

// tcpBufPayload is the largest request payload a pooled buffer
// accepts; larger (but still legal) frames enter the pipeline with a
// copied payload instead. The pooled buffer carries headroom for the
// length prefix, the response trailers, and an echoed correlation
// trailer, so the ingress bytes can be reused as the egress frame.
const tcpBufPayload = 2048

// tcpBufSize is the pooled buffer capacity: prefix + header + payload
// + timing trailer + correlation trailer.
const tcpBufSize = tcpLenPrefixSize + proto.HeaderSize + tcpBufPayload + proto.TimingSize + proto.CorrelationSize

// tcpTxBatch caps how many queued frames one TX wakeup gathers into a
// single writev.
const tcpTxBatch = 64

// tcpDepthBuckets are the pipeline-depth histogram upper bounds
// (powers of two; a final implicit bucket catches the rest).
var tcpDepthBuckets = [...]uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// TCPOptions tunes the pipelined TCP datapath. The zero value means
// one accept shard, 32-frame bursts, 4096 pooled buffers per shard, a
// 256-frame TX ring per connection, unlimited connections, and no
// idle eviction.
type TCPOptions struct {
	// Shards is the number of accept shards. On unix every shard gets
	// its own SO_REUSEPORT listener on the same address and the kernel
	// spreads incoming connections across them; elsewhere the shards
	// share one listener and split the accept work. Each shard owns a
	// buffer pool, so a connection's buffers never cross shards.
	Shards int
	// Burst caps how many already-buffered frames one reader wakeup
	// decodes before the batch goes to the dispatcher.
	Burst int
	// PoolSize is the number of pooled ingress buffers per shard.
	PoolSize int
	// TXRing is the per-connection egress ring capacity (frames).
	TXRing int
	// MaxConns caps concurrently open connections across all shards;
	// excess accepts are closed immediately and counted in
	// ConnsRejected. 0 means unlimited.
	MaxConns int
	// IdleTimeout evicts a connection that has neither delivered a
	// byte nor had a response in flight for this long. 0 disables
	// idle eviction.
	IdleTimeout time.Duration
}

func (o *TCPOptions) fill() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Burst <= 0 {
		o.Burst = 32
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 4096
	}
	if o.TXRing <= 0 {
		o.TXRing = 256
	}
}

// TCPServer exposes a Server over TCP — the stateful-dispatcher
// deployment the paper's §6 sketches — with the same batched, pooled,
// sharded datapath as the UDP transport.
type TCPServer struct {
	Server *Server
	opts   TCPOptions
	lns    []net.Listener
	shards []*tcpShard

	connMu sync.Mutex
	conns  map[*tcpConn]struct{}

	acceptWG sync.WaitGroup
	readWG   sync.WaitGroup
	txWG     sync.WaitGroup
	closed   atomic.Bool

	connsAccepted atomic.Uint64
	connsOpen     atomic.Int64
	connsEvicted  atomic.Uint64
	connsRejected atomic.Uint64

	// Pipeline-depth histogram: how many responses were outstanding on
	// the connection when each request was accepted. depthBuckets[i]
	// counts samples <= tcpDepthBuckets[i]; the last slot is +Inf.
	depthBuckets [len(tcpDepthBuckets) + 1]atomic.Uint64
	depthSum     atomic.Uint64
	depthCount   atomic.Uint64
}

// tcpShard is one accept lane: a listener's worth of connections
// sharing a buffer pool and ingress counters.
type tcpShard struct {
	pool *spsc.Pool
	// poolMu guards Get: the pool's free list is single-consumer, and
	// a shard may host several connection readers.
	poolMu sync.Mutex

	rx      atomic.Uint64
	rxDrops atomic.Uint64 // malformed frames + ingress-ring overflow
	rxSheds atomic.Uint64 // frames shed because the pool was exhausted
	txFull  atomic.Uint64 // responses written inline because a TX ring was full
}

func (sh *tcpShard) getBuf() *spsc.Buffer {
	sh.poolMu.Lock()
	b := sh.pool.Get()
	sh.poolMu.Unlock()
	return b
}

// tcpTxFrame is one encoded response waiting on a connection's egress
// ring: a pooled buffer (reused ingress buffer, the zero-copy path) or
// an allocated message. The zero value is the shutdown sentinel.
type tcpTxFrame struct {
	buf *spsc.Buffer
	msg []byte
}

// tcpConn is one accepted connection: its reader goroutine feeds the
// dispatcher, its TX goroutine owns the socket writes.
type tcpConn struct {
	t    *TCPServer
	sh   *tcpShard
	conn net.Conn
	tx   *spsc.MPSC[tcpTxFrame]
	// wake signals the TX goroutine that frames are queued (capacity 1;
	// producers kick after every put, so the TX loop can block on it
	// without lost wakeups instead of burning the core sleep-polling).
	wake chan struct{}

	// writeMu serializes the TX goroutine's writev with inline
	// fallback writes, so frames never interleave on the stream.
	writeMu sync.Mutex

	// pending counts responses owed on this connection: incremented
	// when a request is accepted into the pipeline (or a shed reply is
	// queued), decremented after the response frame reaches the
	// socket. finish drains a connection only once this hits zero.
	pending atomic.Int64

	scratch []byte // oversized/shed frame reads; allocated on first use

	closing atomic.Bool
}

// ListenTCP binds addr with a single accept shard and default options,
// and starts the datapath on top of an already-configured (not yet
// started) Server.
func ListenTCP(addr string, srv *Server) (*TCPServer, error) {
	return ListenTCPShards(addr, srv, TCPOptions{})
}

// ListenTCPShards binds opts.Shards listeners on addr and starts the
// full pipelined datapath. On unix the listeners share the address via
// SO_REUSEPORT and the kernel spreads incoming connections across
// them; on other platforms a single listener is shared by opts.Shards
// accept goroutines.
func ListenTCPShards(addr string, srv *Server, opts TCPOptions) (*TCPServer, error) {
	opts.fill()
	t := &TCPServer{
		Server: srv,
		opts:   opts,
		conns:  make(map[*tcpConn]struct{}),
	}
	for i := 0; i < opts.Shards; i++ {
		t.shards = append(t.shards, &tcpShard{pool: spsc.NewPool(opts.PoolSize, tcpBufSize)})
	}
	if reusePortSupported && opts.Shards > 1 {
		for i := 0; i < opts.Shards; i++ {
			bind := addr
			if i > 0 {
				// Later shards must join the exact port the first bind
				// resolved (addr may carry port 0).
				bind = t.lns[0].Addr().String()
			}
			ln, err := reusePortListen(bind)
			if err != nil {
				for _, l := range t.lns {
					l.Close()
				}
				return nil, fmt.Errorf("psp: listen tcp %q shard %d: %w", addr, i, err)
			}
			t.lns = append(t.lns, ln)
		}
	} else {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("psp: listen tcp %q: %w", addr, err)
		}
		t.lns = append(t.lns, ln)
	}
	srv.Start()
	srv.attachTCP(t)
	for i := 0; i < opts.Shards; i++ {
		ln := t.lns[0]
		if len(t.lns) > 1 {
			ln = t.lns[i]
		}
		t.acceptWG.Add(1)
		go t.acceptLoop(ln, t.shards[i])
	}
	return t, nil
}

// Addr reports the primary bound address.
func (t *TCPServer) Addr() net.Addr { return t.lns[0].Addr() }

// Addrs reports every listener's bound address (all equal under
// SO_REUSEPORT sharding).
func (t *TCPServer) Addrs() []net.Addr {
	out := make([]net.Addr, len(t.lns))
	for i, ln := range t.lns {
		out[i] = ln.Addr()
	}
	return out
}

// Shards reports the number of accept shards.
func (t *TCPServer) Shards() int { return len(t.shards) }

// Received reports frames accepted into the pipeline across all
// shards.
func (t *TCPServer) Received() uint64 {
	var n uint64
	for _, sh := range t.shards {
		n += sh.rx.Load()
	}
	return n
}

// RxDrops reports frames rejected at ingress: malformed, or shed
// because the ingress ring was full. Pool-exhaustion sheds (which do
// answer the client) are counted separately in RxSheds.
func (t *TCPServer) RxDrops() uint64 {
	var n uint64
	for _, sh := range t.shards {
		n += sh.rxDrops.Load()
	}
	return n
}

// RxSheds reports frames answered StatusDropped without entering the
// pipeline because the shard's buffer pool was exhausted.
func (t *TCPServer) RxSheds() uint64 {
	var n uint64
	for _, sh := range t.shards {
		n += sh.rxSheds.Load()
	}
	return n
}

// TxRingFull reports responses that bypassed a TX ring (written inline
// by the completing worker) because the ring was full.
func (t *TCPServer) TxRingFull() uint64 {
	var n uint64
	for _, sh := range t.shards {
		n += sh.txFull.Load()
	}
	return n
}

// ConnsAccepted reports connections admitted since start.
func (t *TCPServer) ConnsAccepted() uint64 { return t.connsAccepted.Load() }

// ConnsOpen reports currently open connections.
func (t *TCPServer) ConnsOpen() int64 { return t.connsOpen.Load() }

// ConnsEvicted reports connections closed by the server (idle timeout
// or protocol error).
func (t *TCPServer) ConnsEvicted() uint64 { return t.connsEvicted.Load() }

// ConnsRejected reports connections shed at admission because MaxConns
// was reached.
func (t *TCPServer) ConnsRejected() uint64 { return t.connsRejected.Load() }

// poolOutstanding reports checked-out pooled buffers across shards
// (leak diagnostics for tests).
func (t *TCPServer) poolOutstanding() int64 {
	var n int64
	for _, sh := range t.shards {
		n += sh.pool.Outstanding()
	}
	return n
}

// Close stops accepting, drains gracefully — every request already
// accepted into the pipeline is answered and its response flushed to
// the wire — then closes the connections and stops the server.
func (t *TCPServer) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	var err error
	for _, ln := range t.lns {
		if e := ln.Close(); e != nil && err == nil {
			err = e
		}
	}
	t.acceptWG.Wait()
	// Wake blocked readers; they observe closed and stop taking new
	// frames. Re-arm the wakeup until every reader is out, in case a
	// reader re-set its idle deadline concurrently with ours.
	readersDone := make(chan struct{})
	go func() {
		t.readWG.Wait()
		close(readersDone)
	}()
	for done := false; !done; {
		t.connMu.Lock()
		for c := range t.conns {
			c.conn.SetReadDeadline(time.Now()) //nolint:errcheck
		}
		t.connMu.Unlock()
		select {
		case <-readersDone:
			done = true
		case <-time.After(2 * time.Millisecond):
		}
	}
	// No reader remains, so no new requests arrive: Stop settles
	// everything in flight (queued requests answer StatusDropped)
	// through the respond path, which lands frames on the TX rings.
	t.Server.Stop()
	t.connMu.Lock()
	conns := make([]*tcpConn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.connMu.Unlock()
	for _, c := range conns {
		c.finish(false)
	}
	t.txWG.Wait()
	return err
}

// acceptLoop admits connections on one shard's listener.
func (t *TCPServer) acceptLoop(ln net.Listener, sh *tcpShard) {
	defer t.acceptWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if max := t.opts.MaxConns; max > 0 && t.connsOpen.Load() >= int64(max) {
			t.connsRejected.Add(1)
			conn.Close()
			continue
		}
		c := &tcpConn{t: t, sh: sh, conn: conn, tx: spsc.NewMPSC[tcpTxFrame](t.opts.TXRing), wake: make(chan struct{}, 1)}
		t.connMu.Lock()
		if t.closed.Load() {
			// Raced with Close: a fresh connection must not slip past
			// the drain.
			t.connMu.Unlock()
			conn.Close()
			continue
		}
		t.conns[c] = struct{}{}
		t.connMu.Unlock()
		t.connsAccepted.Add(1)
		t.connsOpen.Add(1)
		t.readWG.Add(1)
		go c.readLoop()
		t.txWG.Add(1)
		go c.txLoop()
	}
}

// finish completes a connection's lifecycle exactly once: wait for
// every owed response to reach the wire, stop the TX goroutine (which
// closes the socket), and unregister. evicted marks server-initiated
// closes (idle timeout, protocol error) for the eviction counter.
func (c *tcpConn) finish(evicted bool) {
	if c.closing.Swap(true) {
		return
	}
	// Responses still owed drain through the TX loop: while the server
	// runs, every accepted request settles (worker completion or drop),
	// and during Close the server has already stopped and settled, so
	// pending strictly decreases to zero.
	for spins := 0; c.pending.Load() > 0; spins++ {
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
	for !c.tx.TryPut(tcpTxFrame{}) {
		runtime.Gosched()
	}
	c.kick()
	if evicted && !c.t.closed.Load() {
		c.t.connsEvicted.Add(1)
	}
	c.t.connMu.Lock()
	delete(c.t.conns, c)
	c.t.connMu.Unlock()
	c.t.connsOpen.Add(-1)
}

// readLoop is this connection's net worker: it decodes pipelined
// frames — bursts of them when the stream runs ahead — and hands each
// burst to the dispatcher in one ring synchronization.
func (c *tcpConn) readLoop() {
	defer c.t.readWG.Done()
	t := c.t
	rd := bufio.NewReaderSize(c.conn, 1<<16)
	var lenBuf [tcpLenPrefixSize]byte
	batch := make([]*Request, 0, t.opts.Burst)
	for {
		if t.closed.Load() {
			return // drain: Close owns the rest of the lifecycle
		}
		if idle := t.opts.IdleTimeout; idle > 0 {
			c.conn.SetReadDeadline(time.Now().Add(idle)) //nolint:errcheck
		}
		// Blocking read of the next frame's length prefix.
		n, err := io.ReadFull(rd, lenBuf[:])
		if err != nil {
			if t.closed.Load() {
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				if n == 0 && c.pending.Load() > 0 {
					// Responses still owed: not idle, keep serving.
					continue
				}
				go c.finish(true) // idle (or mid-prefix stall): evict
				return
			}
			go c.finish(false) // peer closed or reset
			return
		}
		batch = batch[:0]
		frameLen := binary.LittleEndian.Uint32(lenBuf[:])
		if !c.readFrame(rd, frameLen, &batch) {
			c.injectBatch(batch)
			go c.finish(true) // invalid frame or broken stream
			return
		}
		// Opportunistic burst: decode whatever additional complete
		// frames the stream already buffered, without blocking.
		for len(batch) < cap(batch) {
			if rd.Buffered() < tcpLenPrefixSize {
				break
			}
			p, _ := rd.Peek(tcpLenPrefixSize)
			next := binary.LittleEndian.Uint32(p)
			if next < proto.HeaderSize || next > maxTCPFrame {
				c.injectBatch(batch)
				c.sh.rxDrops.Add(1)
				go c.finish(true)
				return
			}
			if rd.Buffered() < tcpLenPrefixSize+int(next) {
				break
			}
			rd.Discard(tcpLenPrefixSize) //nolint:errcheck // fully buffered
			if !c.readFrame(rd, next, &batch) {
				c.injectBatch(batch)
				go c.finish(true)
				return
			}
		}
		c.injectBatch(batch)
	}
}

// readFrame consumes one frame body of frameLen bytes and appends the
// decoded request (if any) to batch. It reports false when the
// connection must go away (invalid length or broken stream);
// individually malformed but correctly framed messages are skipped
// without killing the connection.
func (c *tcpConn) readFrame(rd *bufio.Reader, frameLen uint32, batch *[]*Request) bool {
	sh := c.sh
	if frameLen < proto.HeaderSize || frameLen > maxTCPFrame {
		sh.rxDrops.Add(1)
		return false
	}
	// Reading at the prefix offset keeps the buffer layout identical
	// to the egress frame the responder later builds in place.
	pooled := tcpLenPrefixSize+int(frameLen) <= tcpBufSize
	var frame []byte
	var buf *spsc.Buffer
	if pooled {
		if buf = sh.getBuf(); buf != nil {
			frame = buf.Data[tcpLenPrefixSize : tcpLenPrefixSize+int(frameLen)]
		}
	}
	if frame == nil {
		// Pool exhausted, or the frame outgrows a pooled buffer: read
		// through connection-local scratch.
		if c.scratch == nil {
			c.scratch = make([]byte, maxTCPFrame)
		}
		frame = c.scratch[:frameLen]
	}
	if _, err := io.ReadFull(rd, frame); err != nil {
		if buf != nil {
			buf.Release()
		}
		return false
	}
	hdr, payload, perr := proto.DecodeHeader(frame)
	if perr != nil || hdr.Kind != proto.KindRequest {
		if buf != nil {
			buf.Release()
		}
		sh.rxDrops.Add(1)
		return true // framing is intact: skip the message, keep the stream
	}
	if buf == nil && pooled {
		// Pool exhaustion (not oversize): shed with an immediate
		// StatusDropped so the pipelined client learns now instead of
		// timing out — the TCP analogue of UDP's shed-read.
		sh.rxSheds.Add(1)
		c.shedReply(hdr)
		return true
	}
	// Requests stamp their retry attempt in the header status byte
	// (see proto); attempt > 0 is a client retransmission.
	if hdr.Status != 0 {
		c.t.Server.noteRetry()
	}
	// Chaos layer: the frame may vanish here, as if lost before the
	// net worker ever saw it.
	if c.t.Server.inj.IngressDrop() {
		if buf != nil {
			buf.Release()
		}
		return true
	}
	// A fan-out frontend tags sub-requests with a correlation trailer;
	// capture it by value so the responder can echo it after the
	// ingress buffer is overwritten by the response.
	corr, hasCorr := proto.DecodeCorrelation(frame, hdr)
	req := &Request{payload: payload, buf: buf}
	if buf == nil {
		// Oversized frame read via scratch: the payload must survive
		// past this read-loop iteration.
		req.payload = append([]byte(nil), payload...)
	}
	req.respond = c.responder(req, hdr.RequestID, corr, hasCorr)
	*batch = append(*batch, req)
	// Chaos layer: duplicated delivery of the same frame. The copy owns
	// its payload and has no ingress buffer, so its response takes the
	// allocating fallback and cannot race the original for the buffer.
	if c.t.Server.inj.IngressDup() {
		dup := &Request{payload: append([]byte(nil), payload...)}
		dup.respond = c.responder(dup, hdr.RequestID, corr, hasCorr)
		*batch = append(*batch, dup)
	}
	return true
}

// injectBatch hands a burst of decoded requests to the dispatcher in
// one ring synchronization and settles the accounting: accepted
// requests owe a response (pending), the rejected tail is shed.
func (c *tcpConn) injectBatch(batch []*Request) {
	if len(batch) == 0 {
		return
	}
	accepted := c.t.Server.injectBatch(batch)
	c.sh.rx.Add(uint64(accepted))
	if accepted > 0 {
		depth := uint64(c.pending.Add(int64(accepted)))
		c.t.recordDepth(depth, accepted)
	}
	for _, r := range batch[accepted:] {
		// Ingress ring full: shed the tail of the burst.
		if r.buf != nil {
			r.buf.Release()
		}
		c.sh.rxDrops.Add(1)
	}
}

// recordDepth samples the pipeline-depth histogram: n requests were
// accepted while depth responses were outstanding on the connection
// (one sample per request, valued at the post-burst depth).
func (t *TCPServer) recordDepth(depth uint64, n int) {
	i := 0
	for i < len(tcpDepthBuckets) && depth > tcpDepthBuckets[i] {
		i++
	}
	t.depthBuckets[i].Add(uint64(n))
	t.depthSum.Add(depth * uint64(n))
	t.depthCount.Add(uint64(n))
}

// shedReply answers a request that never entered the pipeline with
// StatusDropped, through the normal TX path.
func (c *tcpConn) shedReply(hdr proto.Header) {
	msg := proto.AppendResponse(make([]byte, tcpLenPrefixSize, tcpLenPrefixSize+proto.ResponseOverhead), proto.Header{
		Status:    proto.StatusDropped,
		TypeID:    hdr.TypeID,
		RequestID: hdr.RequestID,
	}, nil, proto.Timing{})
	binary.LittleEndian.PutUint32(msg[:tcpLenPrefixSize], uint32(len(msg)-tcpLenPrefixSize))
	c.pending.Add(1)
	if c.tx.TryPut(tcpTxFrame{msg: msg}) {
		c.kick()
		return
	}
	c.sh.txFull.Add(1)
	c.writeInline(msg)
	c.pending.Add(-1)
}

// kick wakes the TX goroutine (non-blocking; a pending kick already
// covers us).
func (c *tcpConn) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// responder builds the respond callback for one request: encode the
// length-prefixed response into the request's own ingress buffer
// (zero-copy) and push it onto the connection's TX ring. Requests
// without a reusable buffer (chaos duplicates, oversized frames or
// responses) fall back to a one-off allocation. Requests that arrived
// with a correlation trailer (fan-out sub-requests) get it echoed
// after the timing trailer, exactly like the UDP responder.
func (c *tcpConn) responder(req *Request, reqID uint64, corr proto.Correlation, hasCorr bool) func(Response) {
	return func(resp Response) {
		hdr := proto.Header{
			Status:    resp.Status,
			TypeID:    uint16(resp.Type & 0xFFFF),
			RequestID: reqID,
		}
		tm := proto.Timing{Queue: resp.QueueDelay, Service: resp.Service}
		need := tcpLenPrefixSize + proto.ResponseOverhead + len(resp.Payload)
		if resp.RetryAfter > 0 {
			need += proto.RetryAfterSize
		}
		if hasCorr {
			need += proto.CorrelationSize
		}
		var frame tcpTxFrame
		if b := req.buf; b != nil && cap(b.Data) >= need {
			// Take ownership of the ingress buffer: the settling
			// goroutine skips its release, and the TX loop returns the
			// buffer to the pool once the frame is on the wire.
			req.buf = nil
			msg := proto.AppendResponse(b.Data[:tcpLenPrefixSize], hdr, resp.Payload, tm)
			if resp.RetryAfter > 0 {
				msg = proto.AppendRetryAfter(msg, resp.RetryAfter)
			}
			if hasCorr {
				msg = proto.AppendCorrelation(msg, corr)
			}
			binary.LittleEndian.PutUint32(msg[:tcpLenPrefixSize], uint32(len(msg)-tcpLenPrefixSize))
			b.Len = len(msg)
			frame = tcpTxFrame{buf: b}
		} else {
			msg := proto.AppendResponse(make([]byte, tcpLenPrefixSize, need), hdr, resp.Payload, tm)
			if resp.RetryAfter > 0 {
				msg = proto.AppendRetryAfter(msg, resp.RetryAfter)
			}
			if hasCorr {
				msg = proto.AppendCorrelation(msg, corr)
			}
			binary.LittleEndian.PutUint32(msg[:tcpLenPrefixSize], uint32(len(msg)-tcpLenPrefixSize))
			frame = tcpTxFrame{msg: msg}
		}
		if c.tx.TryPut(frame) {
			c.kick()
			return
		}
		// TX ring full: transmit inline rather than block a worker.
		c.sh.txFull.Add(1)
		if frame.buf != nil {
			c.writeInline(frame.buf.Bytes())
			frame.buf.Release()
		} else {
			c.writeInline(frame.msg)
		}
		c.pending.Add(-1)
	}
}

// writeInline transmits one frame under the connection's write lock
// (the fallback path when the TX ring is full).
func (c *tcpConn) writeInline(msg []byte) {
	c.writeMu.Lock()
	c.conn.Write(msg) //nolint:errcheck // client may have gone
	c.writeMu.Unlock()
}

// txLoop owns the connection's socket writes: it gathers queued frames
// — many per wakeup once responses pile up — and lands the batch with
// a single vectored write, then recycles the pooled buffers. When the
// ring runs dry it parks on the wake channel (producers kick after
// every put), so an idle connection costs no CPU and a completing
// worker hands its frame over with one goroutine wakeup. A zero-value
// sentinel (pushed by finish once pending drains) terminates the loop
// after the backlog is out, closing the socket.
func (c *tcpConn) txLoop() {
	defer c.t.txWG.Done()
	frames := make([]tcpTxFrame, 0, tcpTxBatch)
	vecs := make(net.Buffers, 0, tcpTxBatch)
	for {
		frames = frames[:0]
		for len(frames) < tcpTxBatch {
			f, ok := c.tx.TryGet()
			if !ok {
				break
			}
			frames = append(frames, f)
		}
		if len(frames) == 0 {
			<-c.wake
			continue
		}
		if len(frames) < tcpTxBatch {
			// Small batch under load: yield one scheduling quantum so
			// completing workers can pile more frames on the ring, then
			// land the lot in a single writev instead of one syscall
			// per response.
			runtime.Gosched()
			for len(frames) < tcpTxBatch {
				f, ok := c.tx.TryGet()
				if !ok {
					break
				}
				frames = append(frames, f)
			}
		}
		stop := false
		vecs = vecs[:0]
		for i := range frames {
			switch {
			case frames[i].buf != nil:
				vecs = append(vecs, frames[i].buf.Bytes())
			case frames[i].msg != nil:
				vecs = append(vecs, frames[i].msg)
			default:
				stop = true // shutdown sentinel (always the last frame)
			}
		}
		if len(vecs) > 0 {
			c.writeMu.Lock()
			vecs.WriteTo(c.conn) //nolint:errcheck // client may have gone
			c.writeMu.Unlock()
		}
		for i := range frames {
			if frames[i].buf != nil {
				frames[i].buf.Release()
			}
			if frames[i].buf != nil || frames[i].msg != nil {
				c.pending.Add(-1)
			}
		}
		if stop {
			c.conn.Close()
			return
		}
	}
}
