package psp

// Loopback saturation benchmark for the TCP datapath, the
// BenchmarkUDPLoopback analogue: each sub-bench opens a few persistent
// connections, keeps a fixed pipeline of requests in flight on each,
// and reports delivered responses per second. The client harness is
// deliberately identical across server configurations (same framing,
// same windowing, same buffered reader/writer) so the numbers compare
// the server datapath, not the client.
//
// Meaningful numbers need a real request count, e.g.
//
//	go test ./internal/psp -run '^$' -bench TCPLoopback -benchtime 20000x

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/proto"
)

func benchTCPLoopback(b *testing.B, conns, depth int) {
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		Mode:     ModeCFCFS,
		TraceCap: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		b.Fatal(err)
	}
	defer ts.Close()

	type lane struct {
		conn      net.Conn
		wr        *bufio.Writer
		sem       chan struct{} // window: one token per in-flight request
		unflushed int
	}
	// Flushing every freed window slot would degenerate to one write
	// syscall per request in steady state; batching half a window per
	// flush keeps the pipeline full AND the syscalls amortized, for
	// the seed and the rebuilt server alike.
	flushEvery := depth / 2
	if flushEvery < 1 {
		flushEvery = 1
	}
	lanes := make([]*lane, conns)
	var got atomic.Uint64
	var recvWG sync.WaitGroup
	for i := range lanes {
		conn, err := net.Dial("tcp", ts.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		l := &lane{conn: conn, wr: bufio.NewWriterSize(conn, 1<<14), sem: make(chan struct{}, depth)}
		lanes[i] = l
		recvWG.Add(1)
		go func(l *lane) {
			defer recvWG.Done()
			rd := bufio.NewReaderSize(l.conn, 1<<16)
			var lenBuf [4]byte
			frame := make([]byte, maxTCPFrame)
			for {
				if _, err := io.ReadFull(rd, lenBuf[:]); err != nil {
					return
				}
				n := binary.LittleEndian.Uint32(lenBuf[:])
				if n > maxTCPFrame {
					return
				}
				if _, err := io.ReadFull(rd, frame[:n]); err != nil {
					return
				}
				<-l.sem
				got.Add(1)
			}
		}(l)
	}

	msg := proto.AppendMessage(make([]byte, 4, 64), proto.Header{
		Kind:      proto.KindRequest,
		RequestID: 1,
	}, typedPayload(0, "bench"))
	binary.LittleEndian.PutUint32(msg[:4], uint32(len(msg)-4))

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		l := lanes[i%conns]
		// Per-connection window: never more than `depth` outstanding.
		// The send is flushed before the window blocks so the server
		// always has the frames the tokens were taken for.
		select {
		case l.sem <- struct{}{}:
		default:
			l.wr.Flush() //nolint:errcheck
			l.unflushed = 0
			l.sem <- struct{}{}
		}
		l.wr.Write(msg) //nolint:errcheck
		l.unflushed++
		if l.unflushed >= flushEvery || i >= b.N-conns {
			l.wr.Flush() //nolint:errcheck
			l.unflushed = 0
		}
	}
	for _, l := range lanes {
		l.wr.Flush() //nolint:errcheck
	}
	// Drain stragglers until everything is answered or clearly stuck.
	last, idleSince := got.Load(), time.Now()
	for got.Load() < uint64(b.N) {
		time.Sleep(time.Millisecond)
		if n := got.Load(); n != last {
			last, idleSince = n, time.Now()
		} else if time.Since(idleSince) > 200*time.Millisecond {
			break
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()

	delivered := got.Load()
	for _, l := range lanes {
		l.conn.Close()
	}
	recvWG.Wait()
	b.ReportMetric(float64(delivered)/elapsed.Seconds(), "resp/s")
	b.ReportMetric(100*float64(delivered)/float64(b.N), "%delivered")
}

func BenchmarkTCPLoopback(b *testing.B) {
	b.Run("conns=1/depth=1", func(b *testing.B) { benchTCPLoopback(b, 1, 1) })
	b.Run("conns=1/depth=16", func(b *testing.B) { benchTCPLoopback(b, 1, 16) })
	b.Run("conns=4/depth=16", func(b *testing.B) { benchTCPLoopback(b, 4, 16) })
}

// TestTCPHotPathAllocBudget pins the steady-state allocation budget of
// the pipelined datapath: at most 3 allocations per request end to end
// (request object + response routing), matching the UDP path's budget.
// The pooled ingress buffer, the zero-copy egress frame, and the
// batched ring handoffs must all stay allocation-free.
func TestTCPHotPathAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven")
	}
	res := testing.Benchmark(func(b *testing.B) { benchTCPLoopback(b, 1, 16) })
	if a := res.AllocsPerOp(); a > 3 {
		t.Fatalf("TCP hot path allocates %d/op, budget is 3 (UDP parity)", a)
	}
}
