package psp

import (
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/proto"
)

// The allocation budget for the dispatcher's classify→enqueue→
// dispatch→serve→trace hot path is zero: with tracing enabled, moving
// a request through the full pipeline (including publishing its
// lifecycle span and draining it into the histograms) must not touch
// the heap. The benchmark drives an unstarted server's internals from
// one goroutine — the same single-dispatcher discipline the real loop
// runs — so the measurement has no scheduler noise.

// newHotPathServer builds an unstarted CFCFS server whose internals
// the benchmark drives directly.
func newHotPathServer(tb testing.TB) *Server {
	tb.Helper()
	srv, err := NewServer(Config{
		Workers:    1,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		Mode: ModeCFCFS,
	})
	if err != nil {
		tb.Fatal(err)
	}
	// The server is never Started (no goroutines); give it a real
	// start time so s.now() yields sane offsets.
	srv.start = time.Now()
	// Pre-size every amortized structure so the measured loop sees the
	// steady state: the typed FIFOs' ring storage and the histograms'
	// bucket arrays (Reset keeps capacity).
	for i := range srv.queueDelayH {
		srv.queueDelayH[i].Record(1 << 50)
		srv.queueDelayH[i].Reset()
		srv.serviceH[i].Record(1 << 50)
		srv.serviceH[i].Reset()
		srv.slowdownH[i].Record(1 << 50)
		srv.slowdownH[i].Reset()
	}
	return srv
}

// driveHotPath moves one request through the pipeline: dispatcher
// ingress (classify + stamp), typed-queue enqueue, dispatch to the
// worker ring, worker-side service stamps, span publish, and a trace
// drain — everything the live hot path does per request, minus the
// goroutine handoffs.
func driveHotPath(srv *Server, r *Request) {
	r.typ = srv.cfg.Classifier.Classify(r.payload)
	r.classified = srv.now()
	srv.enqueue(r)
	srv.dispatch()
	got := srv.rings[0].Get()
	started := srv.now()
	finished := srv.now()
	srv.traceSpan(srv.traceRingFor(0), 0, got, started, finished, srv.now())
	srv.free[0] = true
	srv.FlushTrace()
}

func TestDispatchHotPathZeroAlloc(t *testing.T) {
	srv := newHotPathServer(t)
	payload := typedPayload(0, "hot")
	r := &Request{payload: payload}
	// Warm amortized growth (FIFO ring storage) out of the measurement.
	for i := 0; i < 64; i++ {
		r.arrival = srv.now()
		driveHotPath(srv, r)
	}
	avg := testing.AllocsPerRun(1000, func() {
		r.arrival = srv.now()
		driveHotPath(srv, r)
	})
	if avg != 0 {
		t.Fatalf("dispatch hot path allocates %.2f objects/op with tracing enabled, want 0", avg)
	}
}

func BenchmarkDispatchHotPath(b *testing.B) {
	srv := newHotPathServer(b)
	payload := typedPayload(0, "hot")
	r := &Request{payload: payload}
	for i := 0; i < 64; i++ {
		r.arrival = srv.now()
		driveHotPath(srv, r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.arrival = srv.now()
		driveHotPath(srv, r)
	}
}

// BenchmarkDispatchHotPathUntraced isolates the tracer's cost: the
// same pipeline with lifecycle tracing disabled.
func BenchmarkDispatchHotPathUntraced(b *testing.B) {
	srv, err := NewServer(Config{
		Workers:    1,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		Mode:     ModeCFCFS,
		TraceCap: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv.start = time.Now()
	payload := typedPayload(0, "hot")
	r := &Request{payload: payload}
	for i := 0; i < 64; i++ {
		r.arrival = srv.now()
		driveHotPath(srv, r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.arrival = srv.now()
		driveHotPath(srv, r)
	}
}

// drainOne pulls the next ingress request and walks it through the
// same classify→enqueue→dispatch→serve→trace steps driveHotPath
// performs, minus the injection (already done by the batch path).
func drainOne(srv *Server) bool {
	r, ok := srv.ingress.TryGet()
	if !ok {
		return false
	}
	r.typ = srv.cfg.Classifier.Classify(r.payload)
	r.classified = srv.now()
	srv.enqueue(r)
	srv.dispatch()
	got := srv.rings[0].Get()
	started := srv.now()
	finished := srv.now()
	srv.traceSpan(srv.traceRingFor(0), 0, got, started, finished, srv.now())
	srv.free[0] = true
	srv.FlushTrace()
	return true
}

// TestInjectBatchZeroAlloc extends the zero-alloc budget to the
// batched ingress path: stamping and ring-reserving a whole burst,
// then dispatching it, must not touch the heap either.
func TestInjectBatchZeroAlloc(t *testing.T) {
	srv := newHotPathServer(t)
	payload := typedPayload(0, "hot")
	batch := make([]*Request, 32)
	for i := range batch {
		batch[i] = &Request{payload: payload}
	}
	cycle := func() {
		if n := srv.injectBatch(batch); n != len(batch) {
			t.Fatalf("injectBatch accepted %d of %d", n, len(batch))
		}
		for drainOne(srv) {
		}
	}
	for i := 0; i < 8; i++ {
		cycle() // warm amortized growth out of the measurement
	}
	avg := testing.AllocsPerRun(200, cycle)
	if avg != 0 {
		t.Fatalf("batched ingress path allocates %.2f objects per burst, want 0", avg)
	}
}

// BenchmarkDispatchHotPathBatch is BenchmarkDispatchHotPath with the
// burst ingress: one injectBatch reservation for 32 requests, then the
// usual per-request pipeline. The ns/req metric is comparable to
// BenchmarkDispatchHotPath's ns/op.
func BenchmarkDispatchHotPathBatch(b *testing.B) {
	srv := newHotPathServer(b)
	payload := typedPayload(0, "hot")
	batch := make([]*Request, 32)
	for i := range batch {
		batch[i] = &Request{payload: payload}
	}
	for i := 0; i < 8; i++ {
		srv.injectBatch(batch)
		for drainOne(srv) {
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.injectBatch(batch)
		for drainOne(srv) {
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(batch)), "ns/req")
}
