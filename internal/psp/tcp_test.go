package psp

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/proto"
)

func newTCPServer(t *testing.T) *TCPServer {
	t.Helper()
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

func TestTCPRoundTrip(t *testing.T) {
	ts := newTCPServer(t)
	cli, err := DialTCP(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.Call(typedPayload(1, "over-tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusOK || resp.Type != 1 {
		t.Fatalf("resp %+v", resp)
	}
	if string(resp.Payload[2:]) != "over-tcp" {
		t.Fatalf("payload %q", resp.Payload)
	}
	if ts.Received() != 1 {
		t.Fatalf("received %d", ts.Received())
	}
}

func TestTCPConcurrentCallsOneConnection(t *testing.T) {
	ts := newTCPServer(t)
	cli, err := DialTCP(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf("msg-%d", i)
			resp, err := cli.Call(typedPayload(i%2, body))
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Payload[2:]) != body {
				errs <- fmt.Errorf("mismatched response %q for %q", resp.Payload, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPMultipleConnections(t *testing.T) {
	ts := newTCPServer(t)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := DialTCP(ts.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for i := 0; i < 25; i++ {
				if _, err := cli.Call(typedPayload(0, "x")); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if ts.Received() != 100 {
		t.Fatalf("received %d", ts.Received())
	}
}

func TestTCPBadFrameDropsConnection(t *testing.T) {
	ts := newTCPServer(t)
	conn, err := net.Dial("tcp", ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Oversized length prefix.
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], 1<<30)
	if _, err := conn.Write(lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection survived protocol error")
	}
	if ts.RxDrops() == 0 {
		t.Fatal("drop not counted")
	}
}

func TestTCPCloseUnblocksClients(t *testing.T) {
	ts := newTCPServer(t)
	cli, err := DialTCP(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if _, err := cli.Call(typedPayload(0, "late")); err == nil {
		t.Fatal("call on closed client succeeded")
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}
