package psp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/proto"
)

// newAdmissionServer builds a stopped echo server with the given
// admission policy and per-type spin services (the transports' Listen
// helpers start it; in-process tests call Start themselves).
func newAdmissionServer(t *testing.T, workers int, adm *admission.Config, services []time.Duration) *Server {
	t.Helper()
	cfg := darc.DefaultConfig(workers)
	cfg.MinWindowSamples = 64
	if workers < 2 {
		cfg.Spillway = 0
	}
	srv, err := NewServer(Config{
		Workers:    workers,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    &echoHandler{serviceByType: services},
		DARC:       cfg,
		Admission:  adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestAdmissionShedConservation floods a single slow worker far past
// its admission budgets and asserts the exact per-type ledger
// identity: accepted == completed + shed_deadline + shed_overload,
// with nothing lost, and every submitter answered exactly once.
func TestAdmissionShedConservation(t *testing.T) {
	srv := newAdmissionServer(t, 1, &admission.Config{
		Budgets:       []time.Duration{time.Millisecond, time.Millisecond},
		OverloadDelay: 500 * time.Microsecond,
	}, []time.Duration{2 * time.Millisecond, 2 * time.Millisecond})
	srv.Start()
	t.Cleanup(srv.Stop)

	const n = 200
	var (
		wg        sync.WaitGroup
		oks       atomic.Uint64
		nacks     atomic.Uint64
		badRetry  atomic.Uint64
		badStatus atomic.Uint64
	)
	for i := 0; i < n; i++ {
		ch, err := srv.Submit(typedPayload(i%2, "flood"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := <-ch
			switch resp.Status {
			case proto.StatusOK:
				oks.Add(1)
			case proto.StatusOverloaded:
				nacks.Add(1)
				if resp.RetryAfter <= 0 {
					badRetry.Add(1)
				}
			default:
				badStatus.Add(1)
			}
		}()
	}
	wg.Wait()
	if badStatus.Load() != 0 {
		t.Fatalf("%d responses with unexpected status", badStatus.Load())
	}
	if badRetry.Load() != 0 {
		t.Fatalf("%d NACKs without a retry-after hint", badRetry.Load())
	}
	if nacks.Load() == 0 {
		t.Fatal("a 1ms budget against a 2ms-service flood shed nothing")
	}
	if oks.Load()+nacks.Load() != n {
		t.Fatalf("answered %d+%d of %d", oks.Load(), nacks.Load(), n)
	}

	// Every submitter has its answer; the dispatcher may still be
	// consuming the final worker completions. Wait for the ledger to
	// balance, then assert it is exact per type.
	deadline := time.Now().Add(5 * time.Second)
	var st admission.Stats
	for {
		st = srv.Admission().Snapshot()
		tot := st.Totals()
		if tot.Accepted == n && tot.Accepted == tot.Completed+tot.Shed() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ledger never balanced: %+v", tot)
		}
		time.Sleep(time.Millisecond)
	}
	for i, slot := range st.Slots {
		if slot.Accepted != slot.Completed+slot.ShedDeadline+slot.ShedOverload {
			t.Errorf("slot %d: accepted %d != completed %d + deadline %d + overload %d",
				i, slot.Accepted, slot.Completed, slot.ShedDeadline, slot.ShedOverload)
		}
		if slot.ShedLost != 0 {
			t.Errorf("slot %d: %d requests lost on a clean run", i, slot.ShedLost)
		}
	}
	if got := st.Totals().Completed; got != uint64(oks.Load()) {
		t.Errorf("ledger completed %d != OK responses %d", got, oks.Load())
	}
	if got := st.Totals().Shed(); got != uint64(nacks.Load()) {
		t.Errorf("ledger shed %d != NACK responses %d", got, nacks.Load())
	}
}

// TestAdmissionShedOrderReverseReservation drives shedOverloaded
// directly on an unstarted server (the dispatcher state is free to
// poke single-threaded) and asserts the trim order: the unknown
// spillway drains first, then the long type down to its backlog cap,
// then the short type — which keeps the deepest backlog.
func TestAdmissionShedOrderReverseReservation(t *testing.T) {
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    &echoHandler{},
		Admission: &admission.Config{
			Budgets:       []time.Duration{4 * time.Millisecond, 4 * time.Millisecond},
			OverloadDelay: time.Millisecond,
			EWMAAlpha:     0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Profile type 0 short (1ms), type 1 long (10ms): DispatchOrder
	// is [0, 1], so the reverse trim hits type 1 first. Backlog caps:
	// type 0 keeps 4ms/1ms = 4, type 1 keeps max(4ms/10ms, 1) = 1.
	srv.ctl.Observe(0, time.Millisecond)
	srv.ctl.Observe(1, 10*time.Millisecond)

	var order []int
	plant := func(q *reqFIFO, typ, n int) {
		for i := 0; i < n; i++ {
			r := &Request{typ: typ, respond: func(resp Response) {
				if resp.Status != proto.StatusOverloaded {
					t.Errorf("shed response status %v", resp.Status)
				}
				order = append(order, typ)
			}}
			if !q.push(r) {
				t.Fatalf("plant type %d", typ)
			}
		}
	}
	plant(&srv.queues[0], 0, 10)
	plant(&srv.queues[1], 1, 10)
	plant(&srv.unknown, classify.Unknown, 3)

	srv.adm.ObserveQueueDelay(10 * time.Millisecond) // EWMA 5ms > 1ms
	if !srv.adm.Overloaded() {
		t.Fatal("EWMA above threshold must flag overload")
	}
	if !srv.shedOverloaded() {
		t.Fatal("overload trim shed nothing")
	}

	if got := srv.unknown.count; got != 0 {
		t.Errorf("unknown queue kept %d, want 0", got)
	}
	if got := srv.queues[1].count; got != 1 {
		t.Errorf("long queue kept %d, want backlog cap 1", got)
	}
	if got := srv.queues[0].count; got != 4 {
		t.Errorf("short queue kept %d, want backlog cap 4", got)
	}
	want := []int{
		classify.Unknown, classify.Unknown, classify.Unknown,
		1, 1, 1, 1, 1, 1, 1, 1, 1,
		0, 0, 0, 0, 0, 0,
	}
	if len(order) != len(want) {
		t.Fatalf("shed %d requests, want %d (%v)", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("shed order %v, want unknown, then long, then short (%v)", order, want)
		}
	}
	st := srv.adm.Snapshot()
	if st.Slots[1].ShedOverload != 9 || st.Slots[0].ShedOverload != 6 || st.Slots[2].ShedOverload != 3 {
		t.Errorf("overload shed counts: %+v", st.Slots)
	}
}

// TestUDPAdmissionNACKTrailer pins the UDP wire format of a shed: a
// StatusOverloaded header plus a decodable retry-after trailer.
func TestUDPAdmissionNACKTrailer(t *testing.T) {
	cfg := darc.DefaultConfig(1)
	cfg.MinWindowSamples = 64
	cfg.Spillway = 0
	srv, err := NewServer(Config{
		Workers:    1,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    &echoHandler{},
		DARC:       cfg,
		// A 1ns budget sheds every request at enqueue: classification
		// alone consumes it, so the NACK path is deterministic.
		Admission: &admission.Config{Budgets: []time.Duration{1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { u.Close() })
	conn := udpClient(t, u.Addr())

	msg := proto.AppendMessage(nil, proto.Header{
		Kind:      proto.KindRequest,
		RequestID: 7,
	}, typedPayload(0, "shed me"))
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	h, body, err := proto.DecodeHeader(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != proto.StatusOverloaded || h.RequestID != 7 {
		t.Fatalf("header %+v", h)
	}
	if len(body) != 0 {
		t.Fatalf("NACK carried payload %q", body)
	}
	ra, ok := proto.DecodeRetryAfter(buf[:n], h)
	if !ok {
		t.Fatal("NACK missing retry-after trailer")
	}
	if ra < admission.DefaultRetryAfterMin || ra > admission.DefaultRetryAfterMax {
		t.Fatalf("retry-after %v outside default clamp", ra)
	}
}

// TestTCPAdmissionNACKPipelining is the pipelined-desync regression:
// many concurrent calls share one connection while admission sheds a
// subset; a NACK frame must not desync RequestID matching, so every
// OK response must still carry its own call's payload, and the
// connection must stay usable afterwards.
func TestTCPAdmissionNACKPipelining(t *testing.T) {
	srv := newAdmissionServer(t, 1, &admission.Config{
		Budgets:       []time.Duration{2 * time.Millisecond, 2 * time.Millisecond},
		OverloadDelay: time.Millisecond,
	}, []time.Duration{time.Millisecond, time.Millisecond})
	tcp, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tcp.Close() })
	cli, err := DialTCP(tcp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	const n = 128
	var (
		wg       sync.WaitGroup
		oks      atomic.Uint64
		nacks    atomic.Uint64
		failures atomic.Uint64
	)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sent := typedPayload(i%2, fmt.Sprintf("pipelined-%03d", i))
			resp, err := cli.Call(sent)
			switch {
			case errors.Is(err, ErrOverloaded):
				nacks.Add(1)
				if resp.Status != proto.StatusOverloaded {
					t.Errorf("call %d: ErrOverloaded with status %v", i, resp.Status)
				}
				if resp.RetryAfter <= 0 {
					t.Errorf("call %d: NACK without retry-after", i)
				}
			case err != nil:
				failures.Add(1)
				t.Errorf("call %d: %v", i, err)
			default:
				oks.Add(1)
				if string(resp.Payload) != string(sent) {
					t.Errorf("call %d: response payload %q does not match request %q — RequestID desync",
						i, resp.Payload, sent)
				}
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d calls failed outright", failures.Load())
	}
	if nacks.Load() == 0 {
		t.Fatal("128 pipelined 1ms calls against a 2ms budget shed nothing")
	}
	if oks.Load()+nacks.Load() != n {
		t.Fatalf("accounted %d+%d of %d", oks.Load(), nacks.Load(), n)
	}

	// The stream survived the interleaved NACK frames: sequential
	// low-rate calls all succeed with matched payloads.
	for i := 0; i < 10; i++ {
		sent := typedPayload(0, fmt.Sprintf("after-%d", i))
		resp, err := cli.Call(sent)
		if errors.Is(err, ErrOverloaded) {
			time.Sleep(resp.RetryAfter)
			continue
		}
		if err != nil {
			t.Fatalf("post-flood call %d: %v", i, err)
		}
		if string(resp.Payload) != string(sent) {
			t.Fatalf("post-flood call %d: payload %q != %q", i, resp.Payload, sent)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSentinelErrors pins the facade error contract at the runtime
// layer: stopped servers and admission sheds return matchable
// sentinels, and the deprecated ErrCallTimeout alias still matches.
func TestSentinelErrors(t *testing.T) {
	if !errors.Is(ErrCallTimeout, ErrDeadlineExceeded) {
		t.Fatal("ErrCallTimeout must alias ErrDeadlineExceeded")
	}
	srv := newEchoServer(t, 1, ModeCFCFS)
	srv.Stop()
	if _, err := srv.Submit(typedPayload(0, "late")); !errors.Is(err, ErrServerStopped) {
		t.Fatalf("submit after stop: %v", err)
	}
}

// TestCallOverloadAndBackpressure exercises the Call convenience
// wrapper's two error paths: ingress backpressure surfaces
// ErrPoolExhausted from Submit, and an admission NACK comes back as a
// Response paired with ErrOverloaded.
func TestCallOverloadAndBackpressure(t *testing.T) {
	// A stopped server never drains its ingress ring, so filling it
	// deterministically trips the pool-exhausted path.
	idle := newAdmissionServer(t, 1, nil, []time.Duration{0, 0})
	var full error
	for i := 0; i < 20000; i++ {
		if _, err := idle.Submit(typedPayload(0, "fill")); err != nil {
			full = err
			break
		}
	}
	if !errors.Is(full, ErrPoolExhausted) {
		t.Fatalf("full ingress returned %v, want ErrPoolExhausted", full)
	}
	if _, err := idle.Call(typedPayload(0, "fill")); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("Call on a full ingress returned %v, want ErrPoolExhausted", err)
	}
	idle.Stop()

	// A 1ms budget against a 2ms-service flood sheds; Call must pair
	// every NACK with ErrOverloaded and a retry-after hint.
	srv := newAdmissionServer(t, 1, &admission.Config{
		Budgets:       []time.Duration{time.Millisecond, time.Millisecond},
		OverloadDelay: 500 * time.Microsecond,
	}, []time.Duration{2 * time.Millisecond, 2 * time.Millisecond})
	srv.Start()
	t.Cleanup(srv.Stop)

	const n = 200
	var (
		wg      sync.WaitGroup
		oks     atomic.Uint64
		overs   atomic.Uint64
		badPair atomic.Uint64
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := srv.Call(typedPayload(i%2, "call"))
			switch {
			case err == nil && resp.Status == proto.StatusOK:
				oks.Add(1)
			case errors.Is(err, ErrOverloaded):
				overs.Add(1)
				if resp.Status != proto.StatusOverloaded || resp.RetryAfter <= 0 {
					badPair.Add(1)
				}
			default:
				badPair.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if badPair.Load() != 0 {
		t.Fatalf("%d calls returned a mismatched response/error pair", badPair.Load())
	}
	if overs.Load() == 0 {
		t.Fatal("a 1ms budget against a 2ms-service flood shed nothing")
	}
	if oks.Load()+overs.Load() != n {
		t.Fatalf("answered %d+%d of %d", oks.Load(), overs.Load(), n)
	}
}
