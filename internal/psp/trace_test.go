package psp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/trace"
)

// newTracedServer builds an echo server with a specific trace ring
// capacity and sink.
func newTracedServer(t *testing.T, workers, traceCap int, sink func(trace.Span)) *Server {
	t.Helper()
	cfg := darc.DefaultConfig(workers)
	cfg.MinWindowSamples = 64
	if workers < 2 {
		cfg.Spillway = 0
	}
	srv, err := NewServer(Config{
		Workers:    workers,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		Mode:      ModeCFCFS,
		DARC:      cfg,
		TraceCap:  traceCap,
		TraceSink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	return srv
}

// TestTraceSpanConservation: every dispatched request either lands in
// the drained span count or the lost counter — no span vanishes.
func TestTraceSpanConservation(t *testing.T) {
	srv := newTracedServer(t, 2, 0, nil)
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := srv.Call(typedPayload(i%2, "c")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Stop()
	st := srv.StatsSnapshot()
	if st.TraceSpans+st.TraceLost != st.Dispatched {
		t.Fatalf("spans %d + lost %d != dispatched %d", st.TraceSpans, st.TraceLost, st.Dispatched)
	}
	if st.TraceLost != 0 {
		t.Fatalf("default ring capacity lost %d spans over %d requests", st.TraceLost, n)
	}
	if st.TraceSpans != n {
		t.Fatalf("spans %d, want %d", st.TraceSpans, n)
	}
}

// TestTraceStagesMonotone: each span's stamps advance through the
// pipeline in stage order, and the derived durations match the
// response's decomposition.
func TestTraceStagesMonotone(t *testing.T) {
	var spans []trace.Span
	srv := newTracedServer(t, 2, 0, func(sp trace.Span) { spans = append(spans, sp) })
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := srv.Call(typedPayload(i%2, "m")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Stop() // final flush; the sink slice is complete after this
	if len(spans) != n {
		t.Fatalf("sink saw %d spans, want %d", len(spans), n)
	}
	seen := make(map[uint64]bool, n)
	for _, sp := range spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span for request %d", sp.ID)
		}
		seen[sp.ID] = true
		stages := []struct {
			name string
			at   time.Duration
		}{
			{"ingress", sp.Ingress},
			{"classified", sp.Classified},
			{"enqueued", sp.Enqueued},
			{"dispatched", sp.Dispatched},
			{"started", sp.Started},
			{"finished", sp.Finished},
			{"replied", sp.Replied},
		}
		for i := 1; i < len(stages); i++ {
			if stages[i].at < stages[i-1].at {
				t.Fatalf("span %d: %s (%v) precedes %s (%v)",
					sp.ID, stages[i].name, stages[i].at, stages[i-1].name, stages[i-1].at)
			}
		}
		if sp.Worker < 0 || sp.Worker >= 2 {
			t.Fatalf("span %d: worker %d out of range", sp.ID, sp.Worker)
		}
		if sp.Type != 0 && sp.Type != 1 {
			t.Fatalf("span %d: type %d", sp.ID, sp.Type)
		}
		if sp.QueueDelay() < 0 || sp.Service() < 0 || sp.Sojourn() < sp.Service() {
			t.Fatalf("span %d: inconsistent decomposition %+v", sp.ID, sp)
		}
	}
}

// TestTraceDisabled: TraceCap < 0 turns the tracer off entirely.
func TestTraceDisabled(t *testing.T) {
	srv := newTracedServer(t, 1, -1, nil)
	for i := 0; i < 20; i++ {
		if _, err := srv.Call(typedPayload(0, "d")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Stop()
	st := srv.StatsSnapshot()
	if st.TraceSpans != 0 || st.TraceLost != 0 {
		t.Fatalf("disabled tracer recorded spans=%d lost=%d", st.TraceSpans, st.TraceLost)
	}
	if got := srv.QueueDelayQuantile(0, 0.99); got != 0 {
		t.Fatalf("disabled tracer quantile %v", got)
	}
	if rows := srv.TraceSummaries(); rows != nil {
		t.Fatalf("disabled tracer summaries %v", rows)
	}
	if n := srv.FlushTrace(); n != 0 {
		t.Fatalf("disabled tracer flushed %d", n)
	}
}

// TestTraceRingOverflow: a tiny ring drops (and counts) spans instead
// of blocking the worker or allocating.
func TestTraceRingOverflow(t *testing.T) {
	srv := newTracedServer(t, 1, 2, nil)
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := srv.Call(typedPayload(0, "o")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Stop()
	st := srv.StatsSnapshot()
	if st.TraceLost == 0 {
		t.Fatalf("capacity-2 ring lost nothing over %d sequential calls", n)
	}
	if st.TraceSpans+st.TraceLost != st.Dispatched {
		t.Fatalf("spans %d + lost %d != dispatched %d", st.TraceSpans, st.TraceLost, st.Dispatched)
	}
}

// TestTraceQuantiles: the per-type accessors and summaries reflect
// completed requests.
func TestTraceQuantiles(t *testing.T) {
	srv := newTracedServer(t, 2, 0, nil)
	for i := 0; i < 100; i++ {
		if _, err := srv.Call(typedPayload(i%2, "q")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Stop()
	for typ := 0; typ < 2; typ++ {
		if d := srv.ServiceQuantile(typ, 0.5); d <= 0 {
			t.Fatalf("type %d service p50 = %v", typ, d)
		}
		if d := srv.QueueDelayQuantile(typ, 0.5); d < 0 {
			t.Fatalf("type %d queue p50 = %v", typ, d)
		}
	}
	rows := srv.TraceSummaries()
	if len(rows) != 2 {
		t.Fatalf("summaries %v, want 2 rows", rows)
	}
	var total uint64
	for _, row := range rows {
		total += row.Count
		if row.SvcP50 <= 0 || row.SvcP999 < row.SvcP50 {
			t.Fatalf("row %+v has non-increasing service quantiles", row)
		}
		if row.QueueP999 < row.QueueP50 {
			t.Fatalf("row %+v has non-increasing queue quantiles", row)
		}
	}
	if total != 100 {
		t.Fatalf("summary counts total %d, want 100", total)
	}
}

// TestLiveTraceReplay is the sim-vs-live loop in miniature: serve
// requests, dump lifecycle spans through the CSV sink, parse the dump
// back, project it to an arrival trace, and replay it through the
// simulator.
func TestLiveTraceReplay(t *testing.T) {
	var buf bytes.Buffer
	sw := trace.NewSpanWriter(&buf)
	srv := newTracedServer(t, 2, 0, func(sp trace.Span) {
		if err := sw.Write(sp); err != nil {
			t.Errorf("span write: %v", err)
		}
	})
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := srv.Call(typedPayload(i%2, "r")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Stop()
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != n {
		t.Fatalf("dumped %d spans, want %d", sw.Count(), n)
	}

	spans, err := trace.ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != n {
		t.Fatalf("parsed %d spans, want %d", len(spans), n)
	}
	tr := trace.SpanTrace(spans)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("projected trace has %d records, want %d", tr.Len(), n)
	}

	res, err := cluster.Run(cluster.Config{
		Workers:   2,
		Trace:     tr,
		Seed:      1,
		NewPolicy: func() cluster.Policy { return policy.NewCFCFS(0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Machine.Completed() + res.Machine.Dropped(); got != n {
		t.Fatalf("replay completed %d + dropped %d, want %d arrivals accounted",
			res.Machine.Completed(), res.Machine.Dropped(), n)
	}
}

// TestTCPTimingTrailer: the response's timing trailer survives the
// wire and surfaces the lifecycle decomposition at the client.
func TestTCPTimingTrailer(t *testing.T) {
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			// A handler slow enough that measured service is nonzero at
			// coarse clock granularity.
			time.Sleep(200 * time.Microsecond)
			return copy(r, p), proto.StatusOK
		}),
		Mode: ModeCFCFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	cli, err := DialTCP(tcp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 5; i++ {
		resp, err := cli.Call(typedPayload(0, fmt.Sprintf("t%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Service <= 0 {
			t.Fatalf("call %d: no service timing on the wire: %+v", i, resp)
		}
		if resp.QueueDelay < 0 {
			t.Fatalf("call %d: negative queue delay %v", i, resp.QueueDelay)
		}
	}
}
