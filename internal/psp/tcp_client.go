package psp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/proto"
)

// FrameScanner incrementally splits a length-prefixed byte stream into
// proto frames. Push accepts arbitrary chunk boundaries (a frame may
// arrive split across many reads, or many frames in one read) and
// emits each complete frame exactly once, in order; emitted slices are
// only valid for the duration of the callback. It is the one stream
// decoder shared by the TCP client, the frontend's TCP receiver, and
// the frame fuzz battery.
type FrameScanner struct {
	buf []byte // unconsumed carry-over bytes
}

// errFrameLength marks a stream with an out-of-range length prefix;
// the connection cannot be resynchronized after it.
var errFrameLength = errors.New("psp: tcp frame length out of range")

// Push feeds one chunk and invokes emit for every completed frame.
// A non-nil error (a bad length prefix, or an error returned by emit)
// poisons the stream: the caller must drop the connection.
func (s *FrameScanner) Push(chunk []byte, emit func(frame []byte) error) error {
	data := chunk
	if len(s.buf) > 0 {
		s.buf = append(s.buf, chunk...)
		data = s.buf
	}
	consumed := 0
	for {
		rest := data[consumed:]
		if len(rest) < tcpLenPrefixSize {
			break
		}
		frameLen := binary.LittleEndian.Uint32(rest)
		if frameLen < proto.HeaderSize || frameLen > maxTCPFrame {
			s.buf = s.buf[:0]
			return errFrameLength
		}
		if len(rest) < tcpLenPrefixSize+int(frameLen) {
			break
		}
		if err := emit(rest[tcpLenPrefixSize : tcpLenPrefixSize+int(frameLen)]); err != nil {
			s.buf = s.buf[:0]
			return err
		}
		consumed += tcpLenPrefixSize + int(frameLen)
	}
	// Carry the partial tail over to the next Push, compacted to the
	// front so the buffer never grows past one frame.
	tail := data[consumed:]
	if len(s.buf) > 0 {
		n := copy(s.buf[:cap(s.buf)], tail)
		s.buf = s.buf[:n]
	} else if len(tail) > 0 {
		s.buf = append(s.buf, tail...)
	}
	return nil
}

// appendRequestFrame encodes one length-prefixed request frame.
func appendRequestFrame(dst []byte, id uint64, attempt uint8, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = proto.AppendMessage(dst, proto.Header{
		Kind:      proto.KindRequest,
		Status:    proto.Status(attempt),
		RequestID: id,
	}, payload)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-tcpLenPrefixSize))
	return dst
}

// Errors returned by TCPClient.Call.
var (
	// ErrClientClosed means the connection is gone (Close was called,
	// the server hung up, or the stream broke).
	ErrClientClosed = errors.New("psp: tcp client closed")
	// ErrCallTimeout means the per-call deadline elapsed; the pending
	// entry has been swept.
	//
	// Deprecated: ErrCallTimeout is the same error value as
	// ErrDeadlineExceeded; match against that instead.
	ErrCallTimeout = ErrDeadlineExceeded
)

// TCPClient is a pipelined client for the TCP transport: any number of
// goroutines may Call concurrently over one connection, each call gets
// its own request ID, and a single read loop routes responses back by
// ID as the server completes them — in any order.
type TCPClient struct {
	conn net.Conn

	// Timeout bounds each Call from write to response; 0 waits
	// forever (until the connection dies). Set it before issuing
	// calls.
	Timeout time.Duration

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	next    uint64
	pending map[uint64]chan Response
	closed  bool
}

// DialTCP connects to a TCP transport server.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{conn: conn, pending: make(map[uint64]chan Response)}
	go c.readLoop()
	return c, nil
}

// Call sends one request and waits for its response. Safe for
// concurrent use; calls pipeline on the shared connection. When
// Timeout is set and elapses, the pending entry is swept and
// ErrCallTimeout returned (the response, if it arrives later, is
// discarded by the read loop).
func (c *TCPClient) Call(payload []byte) (Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Response{}, ErrClientClosed
	}
	c.next++
	id := c.next
	ch := make(chan Response, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	msg := appendRequestFrame(make([]byte, 0, tcpLenPrefixSize+proto.HeaderSize+len(payload)), id, 0, payload)
	c.wmu.Lock()
	_, err := c.conn.Write(msg)
	c.wmu.Unlock()
	if err != nil {
		c.sweep(id)
		return Response{}, fmt.Errorf("psp: tcp call write: %w", err)
	}

	var timeout <-chan time.Time
	if c.Timeout > 0 {
		timer := time.NewTimer(c.Timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			// The read loop died (connection closed) before our
			// response arrived; every pending entry was swept.
			return Response{}, ErrClientClosed
		}
		return resp, respErr(resp)
	case <-timeout:
		c.sweep(id)
		// The response may have raced the sweep; prefer it.
		select {
		case resp, ok := <-ch:
			if ok {
				return resp, respErr(resp)
			}
		default:
		}
		return Response{}, ErrDeadlineExceeded
	}
}

// respErr maps an admission NACK to its sentinel; the Response is
// still returned so callers see the RetryAfter hint.
func respErr(resp Response) error {
	if resp.Status == proto.StatusOverloaded {
		return ErrOverloaded
	}
	return nil
}

// sweep removes one pending entry (timeout or write failure), so
// abandoned calls cannot leak map entries.
func (c *TCPClient) sweep(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// readLoop routes response frames to pending calls. On any stream
// error it closes the connection and fails every pending call, so no
// caller blocks forever on a dead connection.
func (c *TCPClient) readLoop() {
	rd := bufio.NewReaderSize(c.conn, 1<<16)
	var sc FrameScanner
	chunk := make([]byte, 32*1024)
	for {
		n, err := rd.Read(chunk)
		if n > 0 {
			if perr := sc.Push(chunk[:n], c.deliver); perr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	c.conn.Close()
	c.mu.Lock()
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// deliver routes one decoded response frame to its waiting call.
func (c *TCPClient) deliver(frame []byte) error {
	hdr, payload, err := proto.DecodeHeader(frame)
	if err != nil || hdr.Kind != proto.KindResponse {
		return nil // not ours to interpret; skip the frame
	}
	c.mu.Lock()
	ch, ok := c.pending[hdr.RequestID]
	if ok {
		delete(c.pending, hdr.RequestID)
	}
	c.mu.Unlock()
	if !ok {
		return nil // swept by a timeout, or a stray ID
	}
	resp := Response{
		RequestID: hdr.RequestID,
		Type:      int(hdr.TypeID),
		Status:    hdr.Status,
		Payload:   append([]byte(nil), payload...),
	}
	if tm, ok := proto.DecodeTiming(frame, hdr); ok {
		resp.QueueDelay = tm.Queue
		resp.Service = tm.Service
	}
	if ra, ok := proto.DecodeRetryAfter(frame, hdr); ok {
		resp.RetryAfter = ra
	}
	ch <- resp
	return nil
}

// Close tears the connection down; in-flight calls fail with
// ErrClientClosed.
func (c *TCPClient) Close() error {
	return c.conn.Close() // the read loop observes EOF and sweeps
}
