package psp

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/reconfig"
)

// WriteMetrics renders the server's counters and per-type latency
// quantiles in the Prometheus text exposition format, so a live
// Perséphone can be scraped by standard tooling.
func (s *Server) WriteMetrics(w io.Writer) error {
	st := s.StatsSnapshot()
	var b strings.Builder
	b.WriteString("# HELP persephone_requests_total Requests admitted to typed queues.\n")
	b.WriteString("# TYPE persephone_requests_total counter\n")
	fmt.Fprintf(&b, "persephone_requests_total %d\n", st.Enqueued)
	b.WriteString("# HELP persephone_dispatched_total Requests handed to workers.\n")
	b.WriteString("# TYPE persephone_dispatched_total counter\n")
	fmt.Fprintf(&b, "persephone_dispatched_total %d\n", st.Dispatched)
	b.WriteString("# HELP persephone_dropped_total Requests shed by flow control.\n")
	b.WriteString("# TYPE persephone_dropped_total counter\n")
	fmt.Fprintf(&b, "persephone_dropped_total %d\n", st.Dropped)
	b.WriteString("# HELP persephone_reservation_updates_total DARC reservation recomputations.\n")
	b.WriteString("# TYPE persephone_reservation_updates_total counter\n")
	fmt.Fprintf(&b, "persephone_reservation_updates_total %d\n", st.Updates)
	b.WriteString("# HELP persephone_faults_injected_total Faults created by the chaos layer (drops, dups, stalls, slowdowns, crashes).\n")
	b.WriteString("# TYPE persephone_faults_injected_total counter\n")
	fmt.Fprintf(&b, "persephone_faults_injected_total %d\n", st.FaultsInjected)
	b.WriteString("# HELP persephone_retries_total Client retransmissions observed at ingress.\n")
	b.WriteString("# TYPE persephone_retries_total counter\n")
	fmt.Fprintf(&b, "persephone_retries_total %d\n", st.RetriesSeen)
	b.WriteString("# HELP persephone_worker_restarts_total Workers crash-respawned by fault injection.\n")
	b.WriteString("# TYPE persephone_worker_restarts_total counter\n")
	fmt.Fprintf(&b, "persephone_worker_restarts_total %d\n", st.WorkerRestarts)

	b.WriteString("# HELP persephone_latency_seconds Server-side sojourn quantiles per request type.\n")
	b.WriteString("# TYPE persephone_latency_seconds summary\n")
	for _, row := range st.Summaries {
		if row.Completed == 0 {
			continue
		}
		name := sanitizeLabel(row.Name)
		fmt.Fprintf(&b, "persephone_latency_seconds{type=%q,quantile=\"0.5\"} %g\n", name, row.P50.Seconds())
		fmt.Fprintf(&b, "persephone_latency_seconds{type=%q,quantile=\"0.99\"} %g\n", name, row.P99.Seconds())
		fmt.Fprintf(&b, "persephone_latency_seconds{type=%q,quantile=\"0.999\"} %g\n", name, row.P999.Seconds())
		fmt.Fprintf(&b, "persephone_latency_seconds_count{type=%q} %d\n", name, row.Completed)
		fmt.Fprintf(&b, "persephone_slowdown_p999{type=%q} %g\n", name, row.Slowdown999)
	}

	if t := s.tcpSrv.Load(); t != nil {
		writeTCPMetrics(&b, t)
	}
	if st.Admission != nil {
		s.writeAdmissionMetrics(&b, st.Admission)
	}

	s.writeReconfigMetrics(&b)

	b.WriteString("# HELP persephone_trace_spans_total Lifecycle spans drained from worker trace rings.\n")
	b.WriteString("# TYPE persephone_trace_spans_total counter\n")
	fmt.Fprintf(&b, "persephone_trace_spans_total %d\n", st.TraceSpans)
	b.WriteString("# HELP persephone_trace_lost_total Lifecycle spans dropped because a trace ring was full.\n")
	b.WriteString("# TYPE persephone_trace_lost_total counter\n")
	fmt.Fprintf(&b, "persephone_trace_lost_total %d\n", st.TraceLost)

	rows := s.TraceSummaries()
	b.WriteString("# HELP persephone_queue_delay_ns Lifecycle queueing delay (ingress to worker start) per request type, in nanoseconds.\n")
	b.WriteString("# TYPE persephone_queue_delay_ns summary\n")
	for _, row := range rows {
		name := sanitizeLabel(row.Name)
		fmt.Fprintf(&b, "persephone_queue_delay_ns{type=%q,quantile=\"0.5\"} %d\n", name, row.QueueP50.Nanoseconds())
		fmt.Fprintf(&b, "persephone_queue_delay_ns{type=%q,quantile=\"0.99\"} %d\n", name, row.QueueP99.Nanoseconds())
		fmt.Fprintf(&b, "persephone_queue_delay_ns{type=%q,quantile=\"0.999\"} %d\n", name, row.QueueP999.Nanoseconds())
		fmt.Fprintf(&b, "persephone_queue_delay_ns_count{type=%q} %d\n", name, row.Count)
	}
	b.WriteString("# HELP persephone_service_ns Measured handler execution time per request type, in nanoseconds.\n")
	b.WriteString("# TYPE persephone_service_ns summary\n")
	for _, row := range rows {
		name := sanitizeLabel(row.Name)
		fmt.Fprintf(&b, "persephone_service_ns{type=%q,quantile=\"0.5\"} %d\n", name, row.SvcP50.Nanoseconds())
		fmt.Fprintf(&b, "persephone_service_ns{type=%q,quantile=\"0.99\"} %d\n", name, row.SvcP99.Nanoseconds())
		fmt.Fprintf(&b, "persephone_service_ns{type=%q,quantile=\"0.999\"} %d\n", name, row.SvcP999.Nanoseconds())
		fmt.Fprintf(&b, "persephone_service_ns_count{type=%q} %d\n", name, row.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// attachTCP binds the TCP transport to the server's metrics
// exposition (called by ListenTCPShards).
func (s *Server) attachTCP(t *TCPServer) { s.tcpSrv.Store(t) }

// writeTCPMetrics renders the persephone_tcp_* families, mirroring the
// UDP transport counter set plus connection lifecycle and the
// pipeline-depth histogram.
func writeTCPMetrics(b *strings.Builder, t *TCPServer) {
	b.WriteString("# HELP persephone_tcp_rx_total Frames accepted into the pipeline over TCP.\n")
	b.WriteString("# TYPE persephone_tcp_rx_total counter\n")
	fmt.Fprintf(b, "persephone_tcp_rx_total %d\n", t.Received())
	b.WriteString("# HELP persephone_tcp_rx_drops_total Malformed frames and ingress-ring overflow drops.\n")
	b.WriteString("# TYPE persephone_tcp_rx_drops_total counter\n")
	fmt.Fprintf(b, "persephone_tcp_rx_drops_total %d\n", t.RxDrops())
	b.WriteString("# HELP persephone_tcp_rx_sheds_total Frames answered StatusDropped under buffer-pool exhaustion.\n")
	b.WriteString("# TYPE persephone_tcp_rx_sheds_total counter\n")
	fmt.Fprintf(b, "persephone_tcp_rx_sheds_total %d\n", t.RxSheds())
	b.WriteString("# HELP persephone_tcp_tx_inline_total Responses written inline because a connection TX ring was full.\n")
	b.WriteString("# TYPE persephone_tcp_tx_inline_total counter\n")
	fmt.Fprintf(b, "persephone_tcp_tx_inline_total %d\n", t.TxRingFull())
	b.WriteString("# HELP persephone_tcp_conns_accepted_total Connections admitted since start.\n")
	b.WriteString("# TYPE persephone_tcp_conns_accepted_total counter\n")
	fmt.Fprintf(b, "persephone_tcp_conns_accepted_total %d\n", t.ConnsAccepted())
	b.WriteString("# HELP persephone_tcp_conns_open Currently open connections.\n")
	b.WriteString("# TYPE persephone_tcp_conns_open gauge\n")
	fmt.Fprintf(b, "persephone_tcp_conns_open %d\n", t.ConnsOpen())
	b.WriteString("# HELP persephone_tcp_conns_evicted_total Connections closed by the server (idle timeout, protocol error).\n")
	b.WriteString("# TYPE persephone_tcp_conns_evicted_total counter\n")
	fmt.Fprintf(b, "persephone_tcp_conns_evicted_total %d\n", t.ConnsEvicted())
	b.WriteString("# HELP persephone_tcp_conns_rejected_total Connections shed at admission by the MaxConns cap.\n")
	b.WriteString("# TYPE persephone_tcp_conns_rejected_total counter\n")
	fmt.Fprintf(b, "persephone_tcp_conns_rejected_total %d\n", t.ConnsRejected())
	b.WriteString("# HELP persephone_tcp_pipeline_depth In-flight responses per connection, sampled as each request is accepted.\n")
	b.WriteString("# TYPE persephone_tcp_pipeline_depth histogram\n")
	var cum uint64
	for i, le := range tcpDepthBuckets {
		cum += t.depthBuckets[i].Load()
		fmt.Fprintf(b, "persephone_tcp_pipeline_depth_bucket{le=\"%d\"} %d\n", le, cum)
	}
	cum += t.depthBuckets[len(tcpDepthBuckets)].Load()
	fmt.Fprintf(b, "persephone_tcp_pipeline_depth_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(b, "persephone_tcp_pipeline_depth_sum %d\n", t.depthSum.Load())
	fmt.Fprintf(b, "persephone_tcp_pipeline_depth_count %d\n", t.depthCount.Load())
}

// writeAdmissionMetrics renders the persephone_admission_* families:
// the per-type shed ledger (whose per-type identity accepted ==
// completed + shed is exact once drained), the effective budgets, and
// the overload detector's state. The final slot is the
// unknown/unclassified type.
func (s *Server) writeAdmissionMetrics(b *strings.Builder, st *admission.Stats) {
	names := append(s.rec.TypeNames(), "unknown")
	b.WriteString("# HELP persephone_admission_accepted_total Requests entered into the admission ledger, per type.\n")
	b.WriteString("# TYPE persephone_admission_accepted_total counter\n")
	for i, slot := range st.Slots {
		fmt.Fprintf(b, "persephone_admission_accepted_total{type=%q} %d\n", sanitizeLabel(names[i]), slot.Accepted)
	}
	b.WriteString("# HELP persephone_admission_completed_total Admitted requests completed by workers, per type.\n")
	b.WriteString("# TYPE persephone_admission_completed_total counter\n")
	for i, slot := range st.Slots {
		fmt.Fprintf(b, "persephone_admission_completed_total{type=%q} %d\n", sanitizeLabel(names[i]), slot.Completed)
	}
	b.WriteString("# HELP persephone_admission_shed_total Requests refused by admission control, per type and reason (deadline: own budget exceeded; overload: reverse-reservation trim or full queue; lost: crash/shutdown).\n")
	b.WriteString("# TYPE persephone_admission_shed_total counter\n")
	for i, slot := range st.Slots {
		name := sanitizeLabel(names[i])
		fmt.Fprintf(b, "persephone_admission_shed_total{type=%q,reason=\"deadline\"} %d\n", name, slot.ShedDeadline)
		fmt.Fprintf(b, "persephone_admission_shed_total{type=%q,reason=\"overload\"} %d\n", name, slot.ShedOverload)
		fmt.Fprintf(b, "persephone_admission_shed_total{type=%q,reason=\"lost\"} %d\n", name, slot.ShedLost)
	}
	b.WriteString("# HELP persephone_admission_budget_ns Effective admission budget per type (0 = no budget yet), in nanoseconds.\n")
	b.WriteString("# TYPE persephone_admission_budget_ns gauge\n")
	for i := range st.Slots {
		fmt.Fprintf(b, "persephone_admission_budget_ns{type=%q} %d\n", sanitizeLabel(names[i]), s.adm.CachedBudget(i).Nanoseconds())
	}
	b.WriteString("# HELP persephone_admission_queue_delay_ewma_ns Smoothed dispatch queue delay driving the overload detector, in nanoseconds.\n")
	b.WriteString("# TYPE persephone_admission_queue_delay_ewma_ns gauge\n")
	fmt.Fprintf(b, "persephone_admission_queue_delay_ewma_ns %d\n", st.QueueDelayEWMA.Nanoseconds())
	b.WriteString("# HELP persephone_admission_overloaded Whether the dispatcher currently sheds in reverse-reservation order (1 = overloaded).\n")
	b.WriteString("# TYPE persephone_admission_overloaded gauge\n")
	overloaded := 0
	if st.Overloaded {
		overloaded = 1
	}
	fmt.Fprintf(b, "persephone_admission_overloaded %d\n", overloaded)
}

// writeReconfigMetrics renders the live-reconfiguration control
// plane's families: the pool/policy gauges every scrape should watch
// and the counters that account for what reconfigurations did.
func (s *Server) writeReconfigMetrics(b *strings.Builder) {
	b.WriteString("# HELP persephone_workers_active Live worker-pool size (schedulable workers).\n")
	b.WriteString("# TYPE persephone_workers_active gauge\n")
	fmt.Fprintf(b, "persephone_workers_active %d\n", s.activeA.Load())
	b.WriteString("# HELP persephone_reconfig_generation Configuration generation (bumped once per applied reconfiguration).\n")
	b.WriteString("# TYPE persephone_reconfig_generation gauge\n")
	fmt.Fprintf(b, "persephone_reconfig_generation %d\n", s.generation.Load())
	b.WriteString("# HELP persephone_reconfig_applied_total Reconfigurations applied.\n")
	b.WriteString("# TYPE persephone_reconfig_applied_total counter\n")
	fmt.Fprintf(b, "persephone_reconfig_applied_total %d\n", s.rcApplied.Load())
	b.WriteString("# HELP persephone_reconfig_rejected_total Reconfigurations rejected by validation.\n")
	b.WriteString("# TYPE persephone_reconfig_rejected_total counter\n")
	fmt.Fprintf(b, "persephone_reconfig_rejected_total %d\n", s.rcRejected.Load())
	b.WriteString("# HELP persephone_reconfig_policy_swaps_total Scheduling-policy changes applied.\n")
	b.WriteString("# TYPE persephone_reconfig_policy_swaps_total counter\n")
	fmt.Fprintf(b, "persephone_reconfig_policy_swaps_total %d\n", s.rcPolicySwaps.Load())
	b.WriteString("# HELP persephone_reconfig_resizes_total Worker-pool resizes applied.\n")
	b.WriteString("# TYPE persephone_reconfig_resizes_total counter\n")
	fmt.Fprintf(b, "persephone_reconfig_resizes_total %d\n", s.rcResizes.Load())
	b.WriteString("# HELP persephone_reconfig_migrated_total Queued requests moved between queue families by policy swaps.\n")
	b.WriteString("# TYPE persephone_reconfig_migrated_total counter\n")
	fmt.Fprintf(b, "persephone_reconfig_migrated_total %d\n", s.rcMigrated.Load())
	b.WriteString("# HELP persephone_reconfig_migrated_shed_total Migrating requests the target queue family had no room for (answered, not lost).\n")
	b.WriteString("# TYPE persephone_reconfig_migrated_shed_total counter\n")
	fmt.Fprintf(b, "persephone_reconfig_migrated_shed_total %d\n", s.rcMigratedShed.Load())
	b.WriteString("# HELP persephone_reconfig_last_drain_ns Drain wait of the most recent worker-pool shrink, in nanoseconds.\n")
	b.WriteString("# TYPE persephone_reconfig_last_drain_ns gauge\n")
	fmt.Fprintf(b, "persephone_reconfig_last_drain_ns %d\n", s.rcLastDrainNs.Load())
}

func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}

// ServeMetrics exposes /metrics, /healthz and the runtime control
// plane (GET /admin/config, POST /admin/reconfig) on addr, returning
// the bound address and a shutdown function. It uses a fresh mux — no
// global handler registration.
func (s *Server) ServeMetrics(addr string) (bound string, shutdown func() error, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WriteMetrics(w) //nolint:errcheck
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.stopped.Load() {
			http.Error(w, "stopped", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/admin/", reconfig.AdminHandler(s))
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ln, err := newListener(addr)
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(ln) //nolint:errcheck
	return ln.Addr().String(), srv.Close, nil
}

// newListener binds a TCP listener for the metrics endpoint.
func newListener(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
