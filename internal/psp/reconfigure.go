package psp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/reconfig"
	"repro/internal/spsc"
	"repro/internal/trace"
)

// Live reconfiguration: the dispatcher applies reconfig.Specs between
// scheduling decisions, so every change — policy swap, worker resize,
// admission update, DARC refresh — lands atomically with respect to
// request flow. Mechanics:
//
//   - Reconfigure enqueues an op and blocks; the dispatcher takes one
//     op at a time at the top of its loop (step 0).
//   - Every requested change is validated before anything is applied,
//     so a rejected spec leaves the server untouched.
//   - Policy swaps migrate queued requests between queue families
//     (central typed queues <-> per-worker d-FCFS queues) preserving
//     arrival order; requests the target family has no room for are
//     shed with full accounting, never silently lost.
//   - Shrinks retire the highest-numbered workers: idle retirees get
//     their shutdown sentinel immediately, busy ones finish their
//     in-flight request first (the completion handler sentinels them),
//     and the op completes when the last retiree has drained.
//   - Grows reuse retired slots with fresh request rings (the previous
//     tenant may not have consumed its sentinel yet, and an SPSC ring
//     tolerates exactly one consumer) or extend the pool arrays.
//
// Reconfigure must not be called from a Handler: a shrink retiring the
// calling worker would wait on a completion that can never arrive.

// ErrReconfigUnsupported reports a spec asking for a change the server
// cannot make (e.g. admission updates on a server built without
// admission control).
var ErrReconfigUnsupported = errors.New("psp: unsupported reconfiguration")

// reconfigOp is one in-flight reconfiguration.
type reconfigOp struct {
	spec reconfig.Spec
	res  reconfig.Result
	err  error
	done chan struct{}

	// Dispatcher-only drain state for shrinks.
	retireLeft int
	drainStart time.Duration
	deadline   time.Duration
}

// ParsePolicyName maps a policy name to its Mode. Accepted spellings
// mirror Mode.String, case- and hyphen-insensitively: "darc",
// "c-fcfs"/"cfcfs", "d-fcfs"/"dfcfs", "darc-static"/"darcstatic".
func ParsePolicyName(name string) (Mode, error) {
	switch strings.ReplaceAll(strings.ToLower(strings.TrimSpace(name)), "-", "") {
	case "darc":
		return ModeDARC, nil
	case "cfcfs":
		return ModeCFCFS, nil
	case "dfcfs":
		return ModeDFCFS, nil
	case "darcstatic":
		return ModeDARCStatic, nil
	}
	return 0, fmt.Errorf("psp: unknown policy %q (want darc, c-fcfs, d-fcfs or darc-static)", name)
}

// Reconfigure applies spec to the running server and blocks until the
// change is fully in effect — including the graceful drain of retiring
// workers on a shrink. Concurrent calls serialize in arrival order;
// each spec is validated in full before any part of it applies, so an
// error means the server is unchanged. Returns ErrServerStopped when
// the server is stopped before or while the spec is being applied.
func (s *Server) Reconfigure(spec reconfig.Spec) (reconfig.Result, error) {
	if spec.Empty() {
		s.rcRejected.Add(1)
		return reconfig.Result{}, errors.New("psp: empty reconfiguration spec")
	}
	if !s.started.Load() {
		s.rcRejected.Add(1)
		return reconfig.Result{}, errors.New("psp: Reconfigure before Start")
	}
	// Cheap static validation up front; dispatcher-state-dependent
	// checks (type counts, admission availability) run on the
	// dispatcher in validateOp.
	if spec.Policy != nil {
		if _, err := ParsePolicyName(spec.Policy.Mode); err != nil {
			s.rcRejected.Add(1)
			return reconfig.Result{}, err
		}
	}
	if spec.Workers != nil && *spec.Workers <= 0 {
		s.rcRejected.Add(1)
		return reconfig.Result{}, fmt.Errorf("psp: resize to %d workers (want > 0)", *spec.Workers)
	}
	op := &reconfigOp{spec: spec, done: make(chan struct{})}
	s.rcMu.Lock()
	if s.rcClosed || s.stopped.Load() {
		s.rcMu.Unlock()
		return reconfig.Result{}, ErrServerStopped
	}
	s.rcOps = append(s.rcOps, op)
	s.rcPending.Add(1)
	s.rcMu.Unlock()
	<-op.done
	if op.err != nil {
		return reconfig.Result{}, op.err
	}
	return op.res, nil
}

// ConfigSnapshot reports the server's current runtime configuration;
// safe from any goroutine (it reads only atomic mirrors).
func (s *Server) ConfigSnapshot() reconfig.Snapshot {
	snap := reconfig.Snapshot{
		Policy:     Mode(s.modeA.Load()).String(),
		Workers:    int(s.activeA.Load()),
		Generation: s.generation.Load(),
	}
	if s.adm != nil {
		snap.Admission = true
		for i := 0; i <= s.adm.NumTypes(); i++ {
			snap.Budgets = append(snap.Budgets, s.adm.CachedBudget(i).String())
		}
		snap.Overload = s.adm.OverloadThreshold()
	}
	return snap
}

// takeOp dequeues the oldest queued reconfiguration. Dispatcher-only.
func (s *Server) takeOp() *reconfigOp {
	s.rcMu.Lock()
	op := s.rcOps[0]
	s.rcOps = s.rcOps[1:]
	s.rcPending.Add(-1)
	s.rcMu.Unlock()
	return op
}

// beginOp validates and applies one spec. If a shrink leaves workers
// draining, the op parks as pendingOp until the completion handler
// counts the last retiree out. Dispatcher-only.
func (s *Server) beginOp(op *reconfigOp) {
	if err := s.validateOp(op); err != nil {
		s.failOp(op, err)
		return
	}
	op.deadline = op.spec.DrainDeadline
	if op.deadline <= 0 {
		op.deadline = reconfig.DefaultDrainDeadline
	}
	if op.spec.Admission != nil {
		s.applyAdmission(op)
	}
	if op.spec.ForceDARCUpdate {
		if s.ctl.ForceUpdate() {
			op.res.Applied = append(op.res.Applied, "darc reservation recomputed")
		} else {
			op.res.Applied = append(op.res.Applied, "darc refresh no-op (no profile yet)")
		}
	}
	if op.spec.Policy != nil {
		s.applyPolicy(op)
	}
	if op.spec.Workers != nil {
		s.applyResize(op)
	}
	if op.retireLeft > 0 {
		op.drainStart = s.now()
		s.pendingOp = op
		return
	}
	s.finishOp(op)
}

// validateOp checks everything the spec asks for against dispatcher
// state before any of it applies.
func (s *Server) validateOp(op *reconfigOp) error {
	spec := op.spec
	target := s.active
	if spec.Workers != nil {
		target = *spec.Workers
	}
	if spec.Policy != nil {
		mode, err := ParsePolicyName(spec.Policy.Mode)
		if err != nil {
			return err
		}
		if mode == ModeDARCStatic {
			numTypes := len(s.queues)
			means := spec.Policy.StaticMeans
			if len(means) == 0 {
				means = s.cfg.StaticMeans
			}
			if len(means) != numTypes {
				return fmt.Errorf("psp: darc-static needs %d static means, got %d", numTypes, len(means))
			}
			if spec.Policy.StaticReserved < 0 || spec.Policy.StaticReserved > target {
				return fmt.Errorf("psp: darc-static reserved %d out of range for %d workers",
					spec.Policy.StaticReserved, target)
			}
		}
	}
	if spec.Admission != nil && s.adm == nil {
		return fmt.Errorf("%w: admission control was disabled at construction", ErrReconfigUnsupported)
	}
	return nil
}

// applyAdmission merges the change into the controller's current
// policy and installs it. Dispatcher-only.
func (s *Server) applyAdmission(op *reconfigOp) {
	ch := op.spec.Admission
	cfg := s.adm.Config()
	if ch.Budgets != nil {
		cfg.Budgets = append([]time.Duration(nil), ch.Budgets...)
	}
	if ch.UnknownBudget != nil {
		cfg.UnknownBudget = *ch.UnknownBudget
	}
	if ch.OverloadDelay != nil {
		cfg.OverloadDelay = *ch.OverloadDelay
	}
	if ch.AutoMult != nil {
		cfg.AutoMult = *ch.AutoMult
	}
	if ch.MinBudget != nil {
		cfg.MinBudget = *ch.MinBudget
	}
	s.adm.Update(cfg)
	op.res.Applied = append(op.res.Applied, "admission policy updated")
}

// applyPolicy swaps the scheduling policy, migrating queued requests
// between queue families when the swap crosses the central/per-worker
// boundary. Dispatcher-only; validated beforehand.
func (s *Server) applyPolicy(op *reconfigOp) {
	pc := op.spec.Policy
	target, _ := ParsePolicyName(pc.Mode) // validated in validateOp
	cur := s.mode
	if pc.SteerSeed != 0 {
		s.steer = pc.SteerSeed
	}
	if target == ModeDARCStatic {
		if len(pc.StaticMeans) > 0 {
			s.cfg.StaticMeans = append([]time.Duration(nil), pc.StaticMeans...)
		}
		s.cfg.StaticReserved = pc.StaticReserved
		s.staticOrder = staticOrderFor(s.cfg.StaticMeans, len(s.queues))
	}
	if cur == target {
		op.res.Applied = append(op.res.Applied, fmt.Sprintf("policy already %s", target))
		return
	}
	switch {
	case cur != ModeDFCFS && target == ModeDFCFS:
		s.ensureWorkerQ()
		s.migrateQueues(op, s.collectCentral(), func(r *Request) *reqFIFO {
			return &s.workerQ[s.steerNext()]
		})
	case cur == ModeDFCFS && target != ModeDFCFS:
		s.migrateQueues(op, s.collectPerWorker(), func(r *Request) *reqFIFO {
			if r.typ >= 0 && r.typ < len(s.queues) {
				return &s.queues[r.typ]
			}
			return &s.unknown
		})
	}
	s.mode = target
	s.modeA.Store(int64(target))
	s.rcPolicySwaps.Add(1)
	op.res.Applied = append(op.res.Applied, fmt.Sprintf("policy %s -> %s", cur, target))
}

// collectCentral drains every typed queue and the unknown spillway
// into one arrival-ordered slice.
func (s *Server) collectCentral() []*Request {
	var all []*Request
	for i := range s.queues {
		for r := s.queues[i].pop(); r != nil; r = s.queues[i].pop() {
			all = append(all, r)
		}
	}
	for r := s.unknown.pop(); r != nil; r = s.unknown.pop() {
		all = append(all, r)
	}
	sortByArrival(all)
	return all
}

// collectPerWorker drains every d-FCFS worker queue into one
// arrival-ordered slice.
func (s *Server) collectPerWorker() []*Request {
	var all []*Request
	for i := range s.workerQ {
		for r := s.workerQ[i].pop(); r != nil; r = s.workerQ[i].pop() {
			all = append(all, r)
		}
	}
	sortByArrival(all)
	return all
}

func sortByArrival(rs []*Request) {
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].arrival < rs[b].arrival })
}

// migrateQueues repushes collected requests into the target queue
// family. A request the target has no room for is shed with full
// accounting (admission NACK when the controller is on, StatusDropped
// otherwise) — a migration never loses a request silently.
func (s *Server) migrateQueues(op *reconfigOp, rs []*Request, pick func(*Request) *reqFIFO) {
	for _, r := range rs {
		if pick(r).push(r) {
			op.res.Migrated++
			continue
		}
		if s.adm != nil {
			s.shed(r, admission.ShedOverload)
		} else {
			s.drop(r)
		}
		op.res.MigratedShed++
	}
	s.rcMigrated.Add(uint64(op.res.Migrated))
	s.rcMigratedShed.Add(uint64(op.res.MigratedShed))
}

// staticOrderFor computes the DARC-static scan order: type IDs by
// ascending declared mean.
func staticOrderFor(means []time.Duration, numTypes int) []int {
	order := make([]int, numTypes)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return means[order[a]] < means[order[b]] })
	return order
}

// ensureWorkerQ sizes the d-FCFS per-worker queues to the pool arrays.
func (s *Server) ensureWorkerQ() {
	for len(s.workerQ) < len(s.rings) {
		s.workerQ = append(s.workerQ, reqFIFO{cap: s.cfg.QueueCap})
	}
}

// applyResize grows or shrinks the worker pool to the spec's target.
// Dispatcher-only; validated beforehand.
func (s *Server) applyResize(op *reconfigOp) {
	target := *op.spec.Workers
	if target == s.active {
		op.res.Applied = append(op.res.Applied, fmt.Sprintf("workers already %d", target))
		return
	}
	if target > s.active {
		s.growWorkers(op, target)
	} else {
		s.shrinkWorkers(op, target)
	}
	// Recompute the reservation over the new population (§6: DARC
	// cooperates with a core allocator, updating reservations during
	// resize events). A startup-window controller with no profile
	// returns false — the FCFS fallback path covers it, and firstFree
	// bounds any stale reservation by the new active count.
	if _, err := s.ctl.Resize(target); err != nil {
		// The controller refused the new geometry (cannot happen with
		// the spillway auto-clamp, but never leave the pools and the
		// reservation disagreeing silently).
		op.res.Applied = append(op.res.Applied, fmt.Sprintf("darc resize: %v", err))
	}
	if s.mode == ModeDARCStatic && s.cfg.StaticReserved >= target {
		// Keep at least one unreserved worker: a reserved prefix
		// covering the whole (shrunken) pool would starve every
		// non-short type, not just slow it down.
		s.cfg.StaticReserved = target - 1
		op.res.Applied = append(op.res.Applied, fmt.Sprintf("static reserved clamped to %d", target-1))
	}
	s.rcResizes.Add(1)
	op.res.Applied = append(op.res.Applied, fmt.Sprintf("workers -> %d", target))
}

// growWorkers activates slots [active, target): retired slots are
// reused with fresh request rings, new slots extend the pool arrays.
func (s *Server) growWorkers(op *reconfigOp, target int) {
	for w := s.active; w < target; w++ {
		if w < len(s.rings) {
			// Reactivating a retired slot: the previous tenant got its
			// sentinel but may not have consumed it yet, so the new
			// tenant gets a fresh ring to keep one consumer per ring.
			s.rings[w] = spsc.NewRing[*Request](8)
		} else {
			s.rings = append(s.rings, spsc.NewRing[*Request](8))
			s.free = append(s.free, false)
			s.retiring = append(s.retiring, false)
			if s.traceRings != nil {
				// FlushTrace walks traceRings under traceMu; grow it
				// under the same lock. Span rings are never replaced:
				// unread spans from a retired tenant still drain.
				s.traceMu.Lock()
				s.traceRings = append(s.traceRings, spsc.NewRing[trace.Span](s.traceCap))
				s.traceMu.Unlock()
			}
		}
		if s.workerQ != nil {
			s.ensureWorkerQ()
		}
		s.free[w] = true
		s.wg.Add(1)
		go s.workerLoop(w, s.rings[w], s.traceRingFor(w))
		op.res.Added++
	}
	s.active = target
	s.activeA.Store(int64(target))
}

// shrinkWorkers retires slots [target, active): idle retirees are
// sentinelled immediately, busy ones drain via the completion handler.
// d-FCFS backlogs parked on retiring workers are re-steered first.
func (s *Server) shrinkWorkers(op *reconfigOp, target int) {
	old := s.active
	s.active = target
	s.activeA.Store(int64(target))
	if s.mode == ModeDFCFS {
		// Re-steer the retiring workers' backlogs across the surviving
		// pool (steerNext already draws from [0, target)).
		var moved []*Request
		for w := target; w < old && w < len(s.workerQ); w++ {
			for r := s.workerQ[w].pop(); r != nil; r = s.workerQ[w].pop() {
				moved = append(moved, r)
			}
		}
		sortByArrival(moved)
		s.migrateQueues(op, moved, func(r *Request) *reqFIFO {
			return &s.workerQ[s.steerNext()]
		})
	}
	for w := target; w < old; w++ {
		op.res.Retired++
		if s.free[w] {
			// Idle: parked in ring.Get; the sentinel releases it now.
			s.free[w] = false
			s.rings[w].Put(nil)
			continue
		}
		// Busy (or crashed and awaiting respawn): the completion
		// handler sentinels the slot when its current request (or the
		// respawn announcement) arrives.
		s.retiring[w] = true
		op.retireLeft++
	}
}

// failOp rejects the op without applying anything.
func (s *Server) failOp(op *reconfigOp, err error) {
	s.rcRejected.Add(1)
	op.err = err
	close(op.done)
}

// finishOp completes a fully applied op: stamps the drain wait,
// bumps the configuration generation, and releases the caller.
func (s *Server) finishOp(op *reconfigOp) {
	if op.drainStart > 0 {
		op.res.DrainWait = s.now() - op.drainStart
		op.res.DrainDeadlineExceeded = op.res.DrainWait > op.deadline
		s.rcLastDrainNs.Store(int64(op.res.DrainWait))
	}
	op.res.Generation = s.generation.Add(1)
	s.rcApplied.Add(1)
	if s.pendingOp == op {
		s.pendingOp = nil
	}
	close(op.done)
}
