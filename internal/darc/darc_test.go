package darc

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func tpccStats() []TypeStats {
	// Table 4: Payment 5.7µs/44%, OrderStatus 6µs/4%, NewOrder 20µs/44%,
	// Delivery 88µs/4%, StockLevel 100µs/4%.
	return []TypeStats{
		{Mean: 5700 * time.Nanosecond, Ratio: 0.44},
		{Mean: 6 * time.Microsecond, Ratio: 0.04},
		{Mean: 20 * time.Microsecond, Ratio: 0.44},
		{Mean: 88 * time.Microsecond, Ratio: 0.04},
		{Mean: 100 * time.Microsecond, Ratio: 0.04},
	}
}

func highBimodalStats() []TypeStats {
	return []TypeStats{
		{Mean: time.Microsecond, Ratio: 0.5},
		{Mean: 100 * time.Microsecond, Ratio: 0.5},
	}
}

func extremeBimodalStats() []TypeStats {
	return []TypeStats{
		{Mean: 500 * time.Nanosecond, Ratio: 0.995},
		{Mean: 500 * time.Microsecond, Ratio: 0.005},
	}
}

func TestGroupTypesTPCC(t *testing.T) {
	groups := GroupTypes(tpccStats(), 3.0)
	// Paper §5.4.3: {Payment, OrderStatus}, {NewOrder}, {Delivery, StockLevel}.
	if len(groups) != 3 {
		t.Fatalf("got %d groups: %v", len(groups), groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 1 {
		t.Fatalf("group A %v, want [0 1]", groups[0])
	}
	if len(groups[1]) != 1 || groups[1][0] != 2 {
		t.Fatalf("group B %v, want [2]", groups[1])
	}
	if len(groups[2]) != 2 || groups[2][0] != 3 || groups[2][1] != 4 {
		t.Fatalf("group C %v, want [3 4]", groups[2])
	}
}

func TestGroupTypesSingle(t *testing.T) {
	groups := GroupTypes([]TypeStats{{Mean: time.Microsecond, Ratio: 1}}, 2)
	if len(groups) != 1 || len(groups[0]) != 1 {
		t.Fatalf("groups %v", groups)
	}
}

func TestGroupTypesZeroMeanJoinsFirstGroup(t *testing.T) {
	stats := []TypeStats{
		{Mean: 0, Ratio: 0}, // never profiled
		{Mean: time.Microsecond, Ratio: 0.5},
		{Mean: 100 * time.Microsecond, Ratio: 0.5},
	}
	groups := GroupTypes(stats, 2)
	if len(groups) != 2 {
		t.Fatalf("got %d groups: %v", len(groups), groups)
	}
	// The zero-mean type sorts first and shares the first group.
	if groups[0][0] != 0 || groups[0][1] != 1 {
		t.Fatalf("first group %v", groups[0])
	}
}

func TestGroupTypesDeltaMonotone(t *testing.T) {
	// Larger delta never yields more groups.
	stats := tpccStats()
	prev := len(GroupTypes(stats, 1.01))
	for _, delta := range []float64{1.5, 2, 3, 5, 10, 100} {
		n := len(GroupTypes(stats, delta))
		if n > prev {
			t.Fatalf("delta %g produced %d groups, more than %d", delta, n, prev)
		}
		prev = n
	}
	if len(GroupTypes(stats, 100)) != 1 {
		t.Fatal("huge delta should collapse to one group")
	}
}

func TestReservationTPCCWalkthrough(t *testing.T) {
	// Paper §5.4.3 on 14 workers: group A gets 2 workers, B gets 6,
	// C gets 6; A steals from B and C's cores, B from C's, C nothing.
	res, err := ComputeReservation(tpccStats(), Config{Workers: 14, Delta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("%d groups", len(res.Groups))
	}
	a, b, c := res.Groups[0], res.Groups[1], res.Groups[2]
	if len(a.Reserved) != 2 {
		t.Fatalf("group A reserved %v, want 2 workers", a.Reserved)
	}
	if len(b.Reserved) != 6 {
		t.Fatalf("group B reserved %v, want 6 workers", b.Reserved)
	}
	if len(c.Reserved) != 6 {
		t.Fatalf("group C reserved %v, want 6 workers", c.Reserved)
	}
	// A's stealable = B ∪ C's 12 cores; B's = C's 6; C's = none.
	if len(a.Stealable) != 12 {
		t.Fatalf("group A stealable %v", a.Stealable)
	}
	if len(b.Stealable) != 6 {
		t.Fatalf("group B stealable %v", b.Stealable)
	}
	if len(c.Stealable) != 0 {
		t.Fatalf("group C stealable %v, want none", c.Stealable)
	}
	// Worker IDs 0..13 covered exactly once.
	seen := map[int]bool{}
	for _, g := range res.Groups {
		for _, w := range g.Reserved {
			if seen[w] {
				t.Fatalf("worker %d reserved twice", w)
			}
			seen[w] = true
		}
	}
	if len(seen) != 14 {
		t.Fatalf("reserved %d distinct workers, want 14", len(seen))
	}
}

func TestReservationHighBimodal(t *testing.T) {
	// §5.2: DARC reserves 1 core for short requests on 14 workers
	// (demand 0.0099·14 = 0.14 → rounds to 0 → minimum 1).
	res, err := ComputeReservation(highBimodalStats(), Config{Workers: 14, Delta: 3})
	if err != nil {
		t.Fatal(err)
	}
	short := res.Groups[0]
	long := res.Groups[1]
	if len(short.Reserved) != 1 {
		t.Fatalf("short reserved %v, want 1 core", short.Reserved)
	}
	if len(long.Reserved) != 13 {
		t.Fatalf("long reserved %d cores, want 13", len(long.Reserved))
	}
	if len(short.Stealable) != 13 {
		t.Fatalf("short stealable %d, want 13 (all long cores)", len(short.Stealable))
	}
	if len(long.Stealable) != 0 {
		t.Fatalf("long stealable %v, want none", long.Stealable)
	}
}

func TestReservationExtremeBimodal(t *testing.T) {
	// §5.4.2: DARC reserves 2 cores for shorts on 14 workers
	// (demand 0.166·14 = 2.32 → 2).
	res, err := ComputeReservation(extremeBimodalStats(), Config{Workers: 14, Delta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Groups[0].Reserved); got != 2 {
		t.Fatalf("short reserved %d cores, want 2", got)
	}
	if got := len(res.Groups[1].Reserved); got != 12 {
		t.Fatalf("long reserved %d cores, want 12", got)
	}
}

func TestReservationSpillwayExhaustion(t *testing.T) {
	// Two short heavy groups soak up all cores; the long light group
	// must still get the spillway core.
	stats := []TypeStats{
		{Mean: time.Microsecond, Ratio: 0.60},
		{Mean: 10 * time.Microsecond, Ratio: 0.395},
		{Mean: 100 * time.Microsecond, Ratio: 0.005},
	}
	res, err := ComputeReservation(stats, Config{Workers: 4, Delta: 2, Spillway: 1})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Groups[len(res.Groups)-1]
	if len(last.Reserved) == 0 {
		t.Fatal("light group denied service entirely")
	}
	spill := res.SpillwayWorkers[0]
	if spill != 3 {
		t.Fatalf("spillway worker %d, want 3", spill)
	}
	if last.Reserved[0] != spill {
		t.Fatalf("light group reserved %v, want the spillway %d", last.Reserved, spill)
	}
}

func TestReservationUnknownRoutesToSpillway(t *testing.T) {
	res, err := ComputeReservation(highBimodalStats(), Config{Workers: 14, Delta: 3, Spillway: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := res.ReservedFor(UnknownType)
	if len(got) != 1 || got[0] != 13 {
		t.Fatalf("unknown reserved %v, want [13]", got)
	}
	if res.StealableFor(UnknownType) != nil {
		t.Fatal("unknown type should not steal")
	}
}

func TestReservedForOutOfRange(t *testing.T) {
	res, _ := ComputeReservation(highBimodalStats(), Config{Workers: 4, Delta: 3})
	if got := res.ReservedFor(99); len(got) != len(res.SpillwayWorkers) {
		t.Fatalf("out-of-range type got %v", got)
	}
}

func TestReservationErrors(t *testing.T) {
	if _, err := ComputeReservation(nil, Config{Workers: 4}); err == nil {
		t.Fatal("empty stats accepted")
	}
	if _, err := ComputeReservation(highBimodalStats(), Config{Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := ComputeReservation([]TypeStats{{Mean: 0, Ratio: 1}}, Config{Workers: 4}); err == nil {
		t.Fatal("zero demand accepted")
	}
	if _, err := ComputeReservation(highBimodalStats(), Config{Workers: 2, Spillway: 2}); err == nil {
		t.Fatal("all-spillway config accepted")
	}
}

// TestReservationInvariants property-checks Algorithm 2 over random
// type populations.
func TestReservationInvariants(t *testing.T) {
	check := func(rawMeans []uint16, rawRatios []uint8, w uint8) bool {
		workers := int(w%30) + 2
		n := len(rawMeans)
		if n == 0 || n > 12 || len(rawRatios) < n {
			return true
		}
		stats := make([]TypeStats, n)
		var ratioSum float64
		for i := 0; i < n; i++ {
			stats[i] = TypeStats{
				Mean:  time.Duration(int(rawMeans[i])%100000+1) * time.Nanosecond,
				Ratio: float64(int(rawRatios[i])%100 + 1),
			}
			ratioSum += stats[i].Ratio
		}
		for i := range stats {
			stats[i].Ratio /= ratioSum
		}
		res, err := ComputeReservation(stats, Config{Workers: workers, Delta: 2})
		if err != nil {
			return false
		}
		// Invariant 1: every group has at least one reserved worker
		// with a valid ID.
		for _, g := range res.Groups {
			if len(g.Reserved) == 0 {
				return false
			}
			for _, id := range append(append([]int{}, g.Reserved...), g.Stealable...) {
				if id < 0 || id >= workers {
					return false
				}
			}
		}
		// Invariant 2: groups are sorted by ascending mean service.
		for gi := 1; gi < len(res.Groups); gi++ {
			if res.Groups[gi].MeanService < res.Groups[gi-1].MeanService {
				// MeanService is demand-weighted so not strictly
				// monotone; check member means instead.
				prevMax := stats[res.Groups[gi-1].Types[len(res.Groups[gi-1].Types)-1]].Mean
				curMin := stats[res.Groups[gi].Types[0]].Mean
				if curMin < prevMax {
					return false
				}
			}
		}
		// Invariant 3: no group may steal a core reserved by an
		// earlier (shorter) group.
		firstOwner := map[int]int{}
		for gi, g := range res.Groups {
			for _, wid := range g.Reserved {
				if _, ok := firstOwner[wid]; !ok {
					firstOwner[wid] = gi
				}
			}
		}
		for gi, g := range res.Groups {
			for _, wid := range g.Stealable {
				if owner, ok := firstOwner[wid]; ok && owner <= gi {
					return false
				}
			}
		}
		// Invariant 4: every type maps to exactly one group that
		// contains it.
		for ti := range stats {
			gi := res.GroupOf[ti]
			found := false
			for _, m := range res.Groups[gi].Types {
				if m == ti {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNoCycleStealing(t *testing.T) {
	cfg := Config{Workers: 14, Delta: 3, NoCycleStealing: true}
	res, err := ComputeReservation(tpccStats(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range res.Groups {
		if len(g.Stealable) != 0 {
			t.Fatalf("group %d has stealable cores %v with stealing disabled", gi, g.Stealable)
		}
		if len(g.Reserved) == 0 {
			t.Fatalf("group %d lost its reservation", gi)
		}
	}
}

func TestDemandDeviates(t *testing.T) {
	base := []float64{0.5, 0.5}
	if DemandDeviates(base, []float64{0.52, 0.48}, 0.10) {
		t.Fatal("4% change flagged at 10% threshold")
	}
	if !DemandDeviates(base, []float64{0.60, 0.40}, 0.10) {
		t.Fatal("20% change not flagged")
	}
	if !DemandDeviates(base, []float64{0.5}, 0.10) {
		t.Fatal("length change not flagged")
	}
	if !DemandDeviates([]float64{0, 1}, []float64{0.2, 0.8}, 0.10) {
		t.Fatal("growth from zero base not flagged")
	}
	if DemandDeviates([]float64{0, 1}, []float64{0.05, 0.95}, 0.10) {
		t.Fatal("small absolute growth from zero base flagged")
	}
}

func TestReservationString(t *testing.T) {
	res, err := ComputeReservation(tpccStats(), Config{Workers: 14, Delta: 3, Spillway: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"g0(", "g1(", "g2(", "reserved", "spillway"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
	// Group C (longest) cannot steal, so its clause has no steal list.
	if strings.Count(s, "steals") != 2 {
		t.Fatalf("want exactly 2 stealing groups in %s", s)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(14)
	if cfg.Workers != 14 || cfg.MinWindowSamples != 50000 || cfg.Spillway != 1 {
		t.Fatalf("defaults %+v", cfg)
	}
	if cfg.QueueDelaySLO != 10 || cfg.DemandDeviation != 0.10 {
		t.Fatalf("defaults %+v", cfg)
	}
}
