package darc

import (
	"testing"
	"time"
)

func TestProfilerObserveAndSnapshot(t *testing.T) {
	p := NewProfiler(2, 0.5)
	p.Observe(0, 10*time.Microsecond)
	p.Observe(0, 20*time.Microsecond)
	p.Observe(1, 100*time.Microsecond)
	if p.WindowSamples() != 3 {
		t.Fatalf("window samples %d", p.WindowSamples())
	}
	// First sample seeds the EWMA; second moves halfway (alpha 0.5).
	if got := p.MeanService(0); got != 15*time.Microsecond {
		t.Fatalf("type 0 mean %v, want 15µs", got)
	}
	snap := p.Snapshot()
	if snap[0].Ratio < 0.66 || snap[0].Ratio > 0.67 {
		t.Fatalf("type 0 ratio %g, want 2/3", snap[0].Ratio)
	}
	if snap[1].Mean != 100*time.Microsecond {
		t.Fatalf("type 1 mean %v", snap[1].Mean)
	}
}

func TestProfilerUnknown(t *testing.T) {
	p := NewProfiler(1, 0.5)
	p.Observe(-1, time.Microsecond)
	p.Observe(5, time.Microsecond)
	p.Observe(0, time.Microsecond)
	snap := p.Snapshot()
	// Unknown samples don't dilute classified ratios.
	if snap[0].Ratio != 1 {
		t.Fatalf("ratio %g, want 1", snap[0].Ratio)
	}
	if p.WindowSamples() != 3 {
		t.Fatalf("window %d", p.WindowSamples())
	}
}

func TestProfilerRotateKeepsEWMA(t *testing.T) {
	p := NewProfiler(1, 0.5)
	p.Observe(0, 8*time.Microsecond)
	p.Rotate()
	if p.WindowSamples() != 0 {
		t.Fatal("rotate did not clear window")
	}
	if p.MeanService(0) != 8*time.Microsecond {
		t.Fatal("rotate cleared the moving average")
	}
	if p.Snapshot()[0].Ratio != 0 {
		t.Fatal("rotate kept occurrence counts")
	}
}

func TestProfilerOutOfRangeMean(t *testing.T) {
	p := NewProfiler(1, 0.5)
	if p.MeanService(-1) != 0 || p.MeanService(5) != 0 {
		t.Fatal("out-of-range type has non-zero mean")
	}
}

func newTestController(t *testing.T, minSamples uint64) *Controller {
	t.Helper()
	ctl, err := NewController(Config{
		Workers:          14,
		Delta:            3,
		MinWindowSamples: minSamples,
		DemandDeviation:  0.10,
		QueueDelaySLO:    10,
		Spillway:         1,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func feedHighBimodal(ctl *Controller, n int) {
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			ctl.Observe(0, time.Microsecond)
		} else {
			ctl.Observe(1, 100*time.Microsecond)
		}
	}
}

func TestControllerStartupWindow(t *testing.T) {
	ctl := newTestController(t, 100)
	if ctl.Reservation() != nil {
		t.Fatal("reservation exists before any sample")
	}
	feedHighBimodal(ctl, 50)
	if ctl.MaybeUpdate() {
		t.Fatal("updated below MinWindowSamples")
	}
	feedHighBimodal(ctl, 50)
	if !ctl.MaybeUpdate() {
		t.Fatal("first reservation did not install at window end")
	}
	res := ctl.Reservation()
	if res == nil {
		t.Fatal("no reservation after update")
	}
	if got := len(res.Groups[0].Reserved); got != 1 {
		t.Fatalf("short group reserved %d cores, want 1", got)
	}
	if ctl.Updates() != 1 {
		t.Fatalf("updates %d", ctl.Updates())
	}
}

func TestControllerRequiresPressure(t *testing.T) {
	ctl := newTestController(t, 100)
	feedHighBimodal(ctl, 100)
	ctl.MaybeUpdate()
	// Same composition, no queue-delay pressure: no further updates.
	feedHighBimodal(ctl, 200)
	if ctl.MaybeUpdate() {
		t.Fatal("updated without pressure")
	}
	if ctl.Updates() != 1 {
		t.Fatalf("updates %d", ctl.Updates())
	}
}

func TestControllerPressureWithoutDeviationHolds(t *testing.T) {
	ctl := newTestController(t, 100)
	feedHighBimodal(ctl, 100)
	ctl.MaybeUpdate()
	feedHighBimodal(ctl, 100)
	// Pressure but identical composition → no update.
	ctl.NoteQueueDelay(0, time.Second)
	if ctl.MaybeUpdate() {
		t.Fatal("updated without demand deviation")
	}
}

func TestControllerReactsToCompositionChange(t *testing.T) {
	ctl := newTestController(t, 100)
	feedHighBimodal(ctl, 100)
	ctl.MaybeUpdate()
	before := len(ctl.Reservation().Groups[0].Reserved)
	// The workload flips: shorts become rare, longs dominate; demand
	// shifts and queues build.
	for i := 0; i < 300; i++ {
		if i%10 == 0 {
			ctl.Observe(0, time.Microsecond)
		} else {
			ctl.Observe(1, 100*time.Microsecond)
		}
	}
	ctl.NoteQueueDelay(1, 10*time.Millisecond)
	if !ctl.MaybeUpdate() {
		t.Fatal("no update despite pressure + deviation")
	}
	after := ctl.Reservation()
	if after == nil || ctl.Updates() != 2 {
		t.Fatalf("updates %d", ctl.Updates())
	}
	_ = before // allocations may or may not change size; the update itself is the contract
}

func TestControllerNoteQueueDelayThreshold(t *testing.T) {
	ctl := newTestController(t, 10)
	ctl.Observe(0, time.Microsecond)
	// Below 10x the profiled mean: no pressure armed.
	ctl.NoteQueueDelay(0, 5*time.Microsecond)
	if ctl.pressure {
		t.Fatal("pressure armed below SLO")
	}
	ctl.NoteQueueDelay(0, 50*time.Microsecond)
	if !ctl.pressure {
		t.Fatal("pressure not armed above SLO")
	}
	// Unprofiled types cannot arm pressure (mean unknown).
	ctl2 := newTestController(t, 10)
	ctl2.NoteQueueDelay(0, time.Hour)
	if ctl2.pressure {
		t.Fatal("pressure armed with no profile")
	}
}

func TestControllerOnUpdateHook(t *testing.T) {
	ctl := newTestController(t, 10)
	var got *Reservation
	ctl.OnUpdate = func(r *Reservation) { got = r }
	feedHighBimodal(ctl, 10)
	ctl.MaybeUpdate()
	if got == nil || got != ctl.Reservation() {
		t.Fatal("OnUpdate not invoked with the new reservation")
	}
}

func TestControllerForceUpdate(t *testing.T) {
	ctl := newTestController(t, 1_000_000)
	feedHighBimodal(ctl, 10)
	if !ctl.ForceUpdate() {
		t.Fatal("ForceUpdate failed")
	}
	if ctl.Reservation() == nil {
		t.Fatal("no reservation after ForceUpdate")
	}
	// ForceUpdate on an empty profile fails gracefully.
	ctl2 := newTestController(t, 10)
	if ctl2.ForceUpdate() {
		t.Fatal("ForceUpdate succeeded with no samples")
	}
}

func TestControllerDispatchOrder(t *testing.T) {
	ctl := newTestController(t, 10)
	ctl.Observe(0, 100*time.Microsecond)
	ctl.Observe(1, time.Microsecond)
	order := ctl.DispatchOrder()
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("order %v, want [1 0]", order)
	}
}

func TestControllerConfigValidation(t *testing.T) {
	if _, err := NewController(Config{Workers: 0}, 2); err == nil {
		t.Fatal("zero workers accepted")
	}
}
