// Package darc implements the paper's primary contribution: the
// Dynamic Application-aware Reserved Cores scheduling policy.
//
// DARC is application aware (requests carry a type assigned by a
// user-provided classifier), non-preemptive, and deliberately not work
// conserving: it profiles each type's CPU demand, groups types with
// similar service times, reserves whole cores per group (Algorithm 2),
// and dispatches typed queues in ascending service-time order
// (Algorithm 1). Shorter groups may steal cycles from cores reserved
// for longer groups — never the reverse — and spillway cores guarantee
// service to under-provisioned groups and unknown requests.
//
// The package is engine-agnostic: the discrete-event simulator policy
// and the live dispatcher both drive a Controller, so the simulated and
// real schedulers share one implementation.
package darc

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// UnknownType marks requests the classifier could not recognize; they
// are only eligible for spillway cores.
const UnknownType = -1

// Config carries DARC's tuning knobs. The defaults mirror the paper's
// evaluation settings.
type Config struct {
	// Workers is the total number of application workers, including
	// spillway cores.
	Workers int
	// Delta is the service-time similarity factor: a type joins a
	// group when its mean service time is within a factor Delta of the
	// group's smallest mean.
	Delta float64
	// MinWindowSamples is the minimum number of profiled completions
	// before a reservation update may fire (paper: 50000).
	MinWindowSamples uint64
	// DemandDeviation is the minimum relative change in any type's CPU
	// demand required to trigger an update (paper: 10%).
	DemandDeviation float64
	// QueueDelaySLO triggers the update check when a request's queueing
	// delay exceeds this multiple of its type's average service time
	// (paper: 10x).
	QueueDelaySLO float64
	// Spillway is the number of cores set aside as spillway (paper: 1).
	Spillway int
	// EWMAAlpha is the weight of a new sample in the per-type moving
	// average of service times.
	EWMAAlpha float64
	// NoCycleStealing disables borrowing cores reserved for longer
	// groups, degrading DARC to strict static partitioning — the
	// ablation that shows why burst tolerance needs stealing (§3).
	NoCycleStealing bool
}

// DefaultConfig returns the paper's evaluation configuration for the
// given worker count.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:          workers,
		Delta:            3.0,
		MinWindowSamples: 50000,
		DemandDeviation:  0.10,
		QueueDelaySLO:    10,
		Spillway:         1,
		EWMAAlpha:        0.05,
	}
}

func (c *Config) fill() error {
	if c.Workers <= 0 {
		return fmt.Errorf("darc: config needs a positive worker count, got %d", c.Workers)
	}
	if c.Delta <= 1 {
		c.Delta = 3.0
	}
	if c.MinWindowSamples == 0 {
		c.MinWindowSamples = 50000
	}
	if c.DemandDeviation <= 0 {
		c.DemandDeviation = 0.10
	}
	if c.QueueDelaySLO <= 0 {
		c.QueueDelaySLO = 10
	}
	if c.Spillway < 0 {
		c.Spillway = 0
	}
	if c.Spillway >= c.Workers {
		return fmt.Errorf("darc: %d spillway cores leave no schedulable workers out of %d", c.Spillway, c.Workers)
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.05
	}
	return nil
}

// TypeStats is a profiled request type: its moving-average service
// time and its occurrence ratio within the current profiling window.
type TypeStats struct {
	Mean  time.Duration
	Ratio float64
}

// Group is a set of types with similar service times sharing a
// reservation.
type Group struct {
	// Types holds member type IDs, sorted by ascending mean service.
	Types []int
	// MeanService is the demand-weighted contribution ΣS·R of members.
	MeanService time.Duration
	// Demand is the group's CPU demand as a fraction of the machine.
	Demand float64
	// Reserved are worker IDs dedicated to this group.
	Reserved []int
	// Stealable are worker IDs the group may borrow: cores reserved to
	// strictly longer groups, leftover unreserved cores and spillway
	// cores.
	Stealable []int
}

// Reservation is the output of Algorithm 2 for one profiling snapshot.
type Reservation struct {
	// Groups is sorted by ascending mean service time.
	Groups []Group
	// GroupOf maps type ID -> index into Groups.
	GroupOf []int
	// Demands holds the per-type CPU demand fractions the reservation
	// was computed from, used for the update trigger.
	Demands []float64
	// SpillwayWorkers lists the designated spillway core IDs (the
	// highest-numbered workers).
	SpillwayWorkers []int
}

// ReservedFor returns the worker IDs reserved for the given type's
// group, or only the spillway for UnknownType.
func (r *Reservation) ReservedFor(typ int) []int {
	if typ == UnknownType || typ >= len(r.GroupOf) || typ < 0 {
		return r.SpillwayWorkers
	}
	return r.Groups[r.GroupOf[typ]].Reserved
}

// StealableFor returns the worker IDs the given type's group may
// borrow.
func (r *Reservation) StealableFor(typ int) []int {
	if typ == UnknownType || typ >= len(r.GroupOf) || typ < 0 {
		return nil
	}
	return r.Groups[r.GroupOf[typ]].Stealable
}

// GroupTypes groups types whose mean service times fall within a
// factor delta of each other. Types are sorted ascending by mean; a
// type opens a new group when its mean exceeds delta times the current
// group's smallest mean. Zero-mean (never seen) types are grouped with
// the shortest group so they cannot starve.
func GroupTypes(stats []TypeStats, delta float64) [][]int {
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return stats[order[a]].Mean < stats[order[b]].Mean
	})
	var groups [][]int
	var groupMin time.Duration
	for _, t := range order {
		m := stats[t].Mean
		if len(groups) == 0 {
			groups = append(groups, []int{t})
			groupMin = m
			continue
		}
		if groupMin > 0 && float64(m) > delta*float64(groupMin) {
			groups = append(groups, []int{t})
			groupMin = m
			continue
		}
		last := len(groups) - 1
		groups[last] = append(groups[last], t)
		if groupMin == 0 {
			groupMin = m
		}
	}
	return groups
}

// ComputeReservation implements Algorithm 2: group similar types,
// compute each group's average CPU demand (Equation 1), and attribute
// round(demand × workers) cores per group (minimum 1), in ascending
// service-time order. When the free pool is exhausted, groups receive
// the spillway core(s). Shorter groups may steal from cores reserved
// later (longer groups) and from never-reserved cores.
func ComputeReservation(stats []TypeStats, cfg Config) (*Reservation, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(stats) == 0 {
		return nil, fmt.Errorf("darc: no type statistics to reserve from")
	}
	typeGroups := GroupTypes(stats, cfg.Delta)

	// Total demand-weighted service time S = Σ Sj·Rj across all types.
	var total float64
	demands := make([]float64, len(stats))
	for _, s := range stats {
		total += float64(s.Mean) * s.Ratio
	}
	if total <= 0 {
		return nil, fmt.Errorf("darc: zero aggregate service demand")
	}
	for i, s := range stats {
		demands[i] = float64(s.Mean) * s.Ratio / total
	}

	res := &Reservation{
		GroupOf: make([]int, len(stats)),
		Demands: demands,
	}
	nSpill := cfg.Spillway
	for w := cfg.Workers - nSpill; w < cfg.Workers; w++ {
		res.SpillwayWorkers = append(res.SpillwayWorkers, w)
	}

	// The free pool covers every worker; the designated spillway cores
	// are the highest-numbered workers, which are therefore handed out
	// last and returned (shared) once the pool is exhausted. Workers
	// are handed out in ID order so allocations are stable and
	// readable (the paper's TPC-C walkthrough numbers workers the same
	// way).
	next := 0
	nextFree := func() int {
		if next < cfg.Workers {
			w := next
			next++
			return w
		}
		// Pool exhausted: hand out the spillway core (shared, possibly
		// repeatedly). With no designated spillway, fall back to the
		// last worker so under-provisioned groups are never denied
		// service.
		if nSpill == 0 {
			return cfg.Workers - 1
		}
		return res.SpillwayWorkers[0]
	}

	for gi, members := range typeGroups {
		g := Group{Types: members}
		var gd float64
		for _, t := range members {
			res.GroupOf[t] = gi
			gd += demands[t]
			g.MeanService += time.Duration(float64(stats[t].Mean) * stats[t].Ratio)
		}
		g.Demand = gd
		// The paper's Algorithm 2 writes round(d) with d = g.S/S, but
		// its own TPC-C walkthrough attributes round(Δ·W) workers; we
		// implement the walkthrough (see DESIGN.md).
		p := int(math.Round(gd * float64(cfg.Workers)))
		if p == 0 {
			p = 1
		}
		for i := 0; i < p; i++ {
			w := nextFree()
			if len(g.Reserved) > 0 && w == g.Reserved[len(g.Reserved)-1] {
				break // spillway repeated: stop growing
			}
			g.Reserved = append(g.Reserved, w)
		}
		res.Groups = append(res.Groups, g)
	}

	// Stealable sets: group g may borrow cores reserved by strictly
	// longer groups, cores that were never reserved, and the spillway.
	if cfg.NoCycleStealing {
		return res, nil
	}
	reservedBy := make(map[int]int) // worker -> group index
	for gi := range res.Groups {
		for _, w := range res.Groups[gi].Reserved {
			if _, taken := reservedBy[w]; !taken {
				reservedBy[w] = gi
			}
		}
	}
	for gi := range res.Groups {
		g := &res.Groups[gi]
		for w := 0; w < cfg.Workers; w++ {
			owner, taken := reservedBy[w]
			switch {
			case taken && owner > gi:
				g.Stealable = append(g.Stealable, w)
			case !taken:
				g.Stealable = append(g.Stealable, w)
			}
		}
	}
	return res, nil
}

// String summarises the reservation for logs and operator tooling:
// one clause per group with its reserved cores and steal range.
func (r *Reservation) String() string {
	var b strings.Builder
	for gi, g := range r.Groups {
		if gi > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "g%d(types %v, demand %.2f, reserved %v", gi, g.Types, g.Demand, g.Reserved)
		if len(g.Stealable) > 0 {
			fmt.Fprintf(&b, ", steals %v", g.Stealable)
		}
		b.WriteString(")")
	}
	if len(r.SpillwayWorkers) > 0 {
		fmt.Fprintf(&b, "; spillway %v", r.SpillwayWorkers)
	}
	return b.String()
}

// DemandDeviates reports whether any type's demand moved by more than
// threshold (relative where possible, absolute for near-zero bases).
func DemandDeviates(old, new []float64, threshold float64) bool {
	if len(old) != len(new) {
		return true
	}
	for i := range old {
		diff := math.Abs(new[i] - old[i])
		base := math.Abs(old[i])
		if base < 1e-9 {
			if diff > threshold {
				return true
			}
			continue
		}
		if diff/base > threshold {
			return true
		}
	}
	return false
}
