package darc

// Edge-case batteries for the profiler/controller pair, written
// alongside the conformance harness: each case here is a boundary the
// differential comparator leans on (a controller that reserves from an
// empty window, or that regroups nondeterministically, would show up
// as sim↔live divergence long before it showed up in a unit failure).

import (
	"fmt"
	"testing"
	"time"
)

// TestControllerZeroSampleWindow drives every update path against
// windows that contain no usable demand: no samples at all, only
// unclassified samples, and only zero-duration samples. None may
// install a reservation, and each degenerate MaybeUpdate must rotate
// the window so the dead samples cannot satisfy MinWindowSamples
// forever.
func TestControllerZeroSampleWindow(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MinWindowSamples = 8
	c, err := NewController(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Empty profiler: both the triggered and the forced path refuse.
	if c.MaybeUpdate() {
		t.Fatal("MaybeUpdate installed a reservation from an empty window")
	}
	if c.ForceUpdate() {
		t.Fatal("ForceUpdate installed a reservation from an empty window")
	}
	if c.Reservation() != nil || c.Updates() != 0 {
		t.Fatalf("reservation %v updates %d after empty-window updates", c.Reservation(), c.Updates())
	}

	// A window full of unclassified completions reaches
	// MinWindowSamples but carries zero classified demand.
	for i := 0; i < int(cfg.MinWindowSamples); i++ {
		c.Observe(UnknownType, time.Millisecond)
	}
	if c.prof.WindowSamples() != cfg.MinWindowSamples {
		t.Fatalf("window %d, want %d", c.prof.WindowSamples(), cfg.MinWindowSamples)
	}
	if c.MaybeUpdate() {
		t.Fatal("MaybeUpdate reserved from an unknown-only window")
	}
	if c.Reservation() != nil {
		t.Fatal("reservation installed from zero classified demand")
	}
	if got := c.prof.WindowSamples(); got != 0 {
		t.Fatalf("degenerate window not rotated: %d samples remain", got)
	}

	// Zero-duration services classify fine but sum to zero demand —
	// ComputeReservation must reject rather than divide by zero.
	for i := 0; i < int(cfg.MinWindowSamples); i++ {
		c.Observe(i%2, 0)
	}
	if c.ForceUpdate() {
		t.Fatal("ForceUpdate reserved from an all-zero-duration window")
	}
	if _, err := ComputeReservation([]TypeStats{{Mean: 0, Ratio: 1}}, cfg); err == nil {
		t.Fatal("ComputeReservation accepted zero aggregate demand")
	}

	// Sanity: the same controller recovers once real samples arrive.
	for i := 0; i < int(cfg.MinWindowSamples); i++ {
		c.Observe(i%2, time.Millisecond)
	}
	if !c.MaybeUpdate() {
		t.Fatal("controller did not recover after degenerate windows")
	}
}

// TestControllerSingleTypeMix checks the degenerate one-type workload:
// the whole machine is one group holding 100% of demand, every worker
// is reachable by that group, and no amount of pressure can ever
// deviate a single type's demand share away from 1.
func TestControllerSingleTypeMix(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MinWindowSamples = 8
	c, err := NewController(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c.Observe(0, 2*time.Millisecond)
	}
	if !c.MaybeUpdate() {
		t.Fatal("no reservation from a saturated single-type window")
	}
	res := c.Reservation()
	if len(res.Groups) != 1 {
		t.Fatalf("single type produced %d groups: %v", len(res.Groups), res)
	}
	if got := res.Groups[0].Types; len(got) != 1 || got[0] != 0 {
		t.Fatalf("group types %v, want [0]", got)
	}
	if d := res.Demands[0]; d < 0.999 || d > 1.001 {
		t.Fatalf("single-type demand share %v, want 1", d)
	}
	// Reserved ∪ stealable must cover the whole machine: with demand 1
	// the group holds round(1×4)=4 cores, so nothing is left to starve.
	covered := make(map[int]bool)
	for _, w := range res.Groups[0].Reserved {
		covered[w] = true
	}
	for _, w := range res.Groups[0].Stealable {
		covered[w] = true
	}
	for w := 0; w < cfg.Workers; w++ {
		if !covered[w] {
			t.Fatalf("worker %d unreachable for the only type: %v", w, res)
		}
	}
	if order := c.DispatchOrder(); len(order) != 1 || order[0] != 0 {
		t.Fatalf("dispatch order %v, want [0]", order)
	}

	// Demand share is pinned at 1: pressure alone must never flap the
	// reservation (DemandDeviates([1],[1]) is false by construction).
	for i := 0; i < 8; i++ {
		c.Observe(0, 2*time.Millisecond)
	}
	c.NoteQueueDelay(0, time.Second)
	if c.MaybeUpdate() {
		t.Fatal("single-type reservation churned under pressure with unchanged demand")
	}
	if c.Updates() != 1 {
		t.Fatalf("updates %d, want 1", c.Updates())
	}
}

// TestControllerRegroupsWhenMeanCrossesBoundary moves one type's mean
// service time across the Delta grouping threshold mid-run and checks
// the triggered update path re-partitions the groups: two types within
// 3x start life merged; once the longer type's EWMA drifts past 3x the
// shorter's, the next legitimate update must split them. (This is the
// exact mechanism behind the conformance "exp" spec's 10x mean gap —
// a gap near the boundary regroups on one side only.)
func TestControllerRegroupsWhenMeanCrossesBoundary(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MinWindowSamples = 4
	cfg.EWMAAlpha = 1 // mean = latest sample: the crossing is explicit
	c, err := NewController(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: 2ms vs 5ms — inside Delta (5/2 < 3), one merged group.
	for i := 0; i < 2; i++ {
		c.Observe(0, 2*time.Millisecond)
		c.Observe(1, 5*time.Millisecond)
	}
	if !c.MaybeUpdate() {
		t.Fatal("no startup reservation")
	}
	if res := c.Reservation(); len(res.Groups) != 1 {
		t.Fatalf("phase 1: %d groups, want 1 merged (2ms vs 5ms within Delta %v): %v",
			len(res.Groups), cfg.Delta, res)
	}

	// Phase 2: the long type drifts to 12ms (12/2 > 3). Demand shares
	// move from [2,5]/7 to [2,12]/14 — a 0.14 deviation, past the 0.10
	// trigger — so with pressure the update is legitimate and must now
	// yield two groups.
	for i := 0; i < 2; i++ {
		c.Observe(0, 2*time.Millisecond)
		c.Observe(1, 12*time.Millisecond)
	}
	c.NoteQueueDelay(1, time.Second)
	if !c.MaybeUpdate() {
		t.Fatal("no update after the mean crossed the grouping boundary")
	}
	res := c.Reservation()
	if len(res.Groups) != 2 {
		t.Fatalf("phase 2: %d groups, want 2 after crossing Delta: %v", len(res.Groups), res)
	}
	if res.GroupOf[0] == res.GroupOf[1] {
		t.Fatalf("types still share group %d after crossing: %v", res.GroupOf[0], res)
	}
	// Groups are ordered by ascending mean: the short type's group
	// comes first and its reservation is disjoint from the long's.
	if res.GroupOf[0] != 0 || res.GroupOf[1] != 1 {
		t.Fatalf("group order %v, want short first", res.GroupOf)
	}

	// And back: the long type relaxes to 4ms (within Delta again); the
	// groups must re-merge on the next legitimate update.
	for i := 0; i < 2; i++ {
		c.Observe(0, 2*time.Millisecond)
		c.Observe(1, 4*time.Millisecond)
	}
	c.NoteQueueDelay(1, time.Second)
	if !c.MaybeUpdate() {
		t.Fatal("no update after the mean crossed back")
	}
	if res := c.Reservation(); len(res.Groups) != 1 {
		t.Fatalf("regroup back: %d groups, want 1: %v", len(res.Groups), res)
	}
}

// TestControllerDeterministicConvergence feeds two independent
// controllers an identical interleaved sample/pressure/update schedule
// and requires them to agree exactly at every step — reservation
// layout, update count and profiled means. The conformance harness
// assumes this: replaying one trace through sim and live must not
// diverge because of hidden controller state (maps, clocks, RNG).
func TestControllerDeterministicConvergence(t *testing.T) {
	mk := func() *Controller {
		cfg := DefaultConfig(3)
		cfg.MinWindowSamples = 16
		c, err := NewController(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()

	// A deterministic but non-trivial schedule: services wobble ±25%
	// around 1ms/8ms on an arithmetic pattern, with periodic pressure.
	svc := func(i int) (int, time.Duration) {
		typ := 0
		base := time.Millisecond
		if i%3 == 0 {
			typ, base = 1, 8*time.Millisecond
		}
		jitter := time.Duration(i%7-3) * base / 12
		return typ, base + jitter
	}
	for i := 0; i < 400; i++ {
		typ, s := svc(i)
		a.Observe(typ, s)
		b.Observe(typ, s)
		if i%50 == 49 {
			a.NoteQueueDelay(typ, time.Second)
			b.NoteQueueDelay(typ, time.Second)
		}
		ua, ub := a.MaybeUpdate(), b.MaybeUpdate()
		if ua != ub {
			t.Fatalf("step %d: update decisions diverged (%v vs %v)", i, ua, ub)
		}
		ra, rb := a.Reservation(), b.Reservation()
		if (ra == nil) != (rb == nil) || (ra != nil && ra.String() != rb.String()) {
			t.Fatalf("step %d: reservations diverged:\n  a: %v\n  b: %v", i, ra, rb)
		}
	}
	if a.Updates() != b.Updates() || a.Updates() == 0 {
		t.Fatalf("update counts %d vs %d (want equal, nonzero)", a.Updates(), b.Updates())
	}
	for typ := 0; typ < 2; typ++ {
		if am, bm := a.MeanService(typ), b.MeanService(typ); am != bm {
			t.Fatalf("type %d EWMA diverged: %v vs %v", typ, am, bm)
		}
	}
	if fmt.Sprint(a.DispatchOrder()) != fmt.Sprint(b.DispatchOrder()) {
		t.Fatalf("dispatch orders diverged: %v vs %v", a.DispatchOrder(), b.DispatchOrder())
	}
}

// TestProfilerEWMAConvergesToTrueMean checks the estimator itself: a
// transient first sample 4x the steady value must wash out of the
// default-alpha EWMA geometrically — within 1% of the steady mean
// after 200 samples (0.95^200 of the 15ms error is sub-microsecond).
func TestProfilerEWMAConvergesToTrueMean(t *testing.T) {
	p := NewProfiler(1, 0.05)
	steady := 5 * time.Millisecond
	p.Observe(0, 20*time.Millisecond) // seeds the EWMA directly
	for i := 0; i < 200; i++ {
		p.Observe(0, steady)
	}
	got := p.MeanService(0)
	if diff := (got - steady).Abs(); diff > steady/100 {
		t.Fatalf("EWMA %v after 200 steady samples, want within 1%% of %v", got, steady)
	}
	// Rotation must not disturb the converged estimate.
	p.Rotate()
	if p.MeanService(0) != got {
		t.Fatalf("Rotate changed the EWMA: %v -> %v", got, p.MeanService(0))
	}
}
