package darc

import (
	"sync/atomic"
	"time"
)

// Controller ties the profiler, the reservation algorithm and the
// update triggers together. Both the simulator policy and the live
// dispatcher drive a Controller:
//
//   - on every completion, call Observe;
//   - on every dispatch, call NoteQueueDelay with the request's
//     queueing delay, then MaybeUpdate;
//   - consult Reservation (nil during the c-FCFS startup window) and
//     DispatchOrder to pick work.
//
// The controller's mutating methods are not safe for concurrent use;
// the dispatcher is a single thread of control in both engines. The
// Reservation and Updates accessors ARE safe from any goroutine (they
// back stats endpoints and tests that watch a live dispatcher).
type Controller struct {
	cfg  Config
	prof *Profiler
	// res and updates are written only by the dispatcher thread but
	// read from arbitrary goroutines, hence atomic.
	res     atomic.Pointer[Reservation]
	updates atomic.Uint64

	pressure     bool
	lastSnapshot []TypeStats

	// desiredSpillway remembers the configured spillway width so a
	// Resize down to a tiny pool (where that many spillway cores would
	// leave no schedulable workers) can clamp to zero and a later
	// Resize back up can restore it.
	desiredSpillway int

	// OnUpdate, when non-nil, is invoked after every reservation
	// change with the new reservation (used by experiments to log core
	// allocations over time, Figure 7).
	OnUpdate func(*Reservation)
}

// NewController creates a controller for numTypes request types.
func NewController(cfg Config, numTypes int) (*Controller, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Controller{
		cfg:             cfg,
		prof:            NewProfiler(numTypes, cfg.EWMAAlpha),
		desiredSpillway: cfg.Spillway,
	}, nil
}

// Config returns the controller's effective configuration (with
// defaults filled in).
func (c *Controller) Config() Config { return c.cfg }

// Profiler exposes the underlying profiler (read-mostly, for reports).
func (c *Controller) Profiler() *Profiler { return c.prof }

// Reservation returns the active reservation, or nil while the system
// is still in its c-FCFS startup window.
func (c *Controller) Reservation() *Reservation { return c.res.Load() }

// Updates reports how many reservation updates have been applied.
func (c *Controller) Updates() uint64 { return c.updates.Load() }

// Observe records a completed request's measured service time.
func (c *Controller) Observe(typ int, service time.Duration) {
	c.prof.Observe(typ, service)
}

// NoteQueueDelay feeds the dispatcher's queueing-delay signal: if a
// request waited longer than QueueDelaySLO times its type's average
// service time, the controller arms the update check.
func (c *Controller) NoteQueueDelay(typ int, delay time.Duration) {
	mean := c.prof.MeanService(typ)
	if mean <= 0 {
		return
	}
	if float64(delay) > c.cfg.QueueDelaySLO*float64(mean) {
		c.pressure = true
	}
}

// MeanService reports the profiled moving-average service time for a
// type.
func (c *Controller) MeanService(typ int) time.Duration {
	return c.prof.MeanService(typ)
}

// MaybeUpdate applies the paper's update rule and reports whether the
// reservation changed:
//
//   - the first reservation is installed as soon as the startup window
//     reaches MinWindowSamples (ending the c-FCFS phase);
//   - later updates additionally require queueing-delay pressure and a
//     CPU-demand deviation of at least DemandDeviation.
func (c *Controller) MaybeUpdate() bool {
	if c.prof.WindowSamples() < c.cfg.MinWindowSamples {
		return false
	}
	snapshot := c.prof.Snapshot()
	if cur := c.res.Load(); cur != nil {
		if !c.pressure {
			return false
		}
		demands := demandsOf(snapshot)
		if !DemandDeviates(cur.Demands, demands, c.cfg.DemandDeviation) {
			// Pressure without a composition change: stay put, but
			// keep watching (do not clear pressure so the next window
			// can still react).
			c.prof.Rotate()
			return false
		}
	}
	res, err := ComputeReservation(snapshot, c.cfg)
	if err != nil {
		// Degenerate snapshot (e.g. zero demand); keep the previous
		// reservation and retry next window.
		c.prof.Rotate()
		return false
	}
	c.res.Store(res)
	c.lastSnapshot = snapshot
	c.pressure = false
	c.updates.Add(1)
	c.prof.Rotate()
	if c.OnUpdate != nil {
		c.OnUpdate(res)
	}
	return true
}

// Resize changes the worker population the controller reserves over —
// the paper's §6 "DARC can cooperate with an allocator to obtain and
// release cores, adapting to load changes and updating reservations
// during such events". If a profile exists, the reservation is
// recomputed immediately; it reports whether a new reservation was
// installed.
func (c *Controller) Resize(workers int) (bool, error) {
	cfg := c.cfg
	cfg.Workers = workers
	cfg.Spillway = c.desiredSpillway
	if cfg.Spillway >= workers {
		// The configured spillway would consume the whole (shrunken)
		// pool; run without designated spillway cores until the pool
		// grows back.
		cfg.Spillway = 0
	}
	if err := cfg.fill(); err != nil {
		return false, err
	}
	c.cfg = cfg
	if c.prof.WindowSamples() == 0 && c.res.Load() == nil {
		// Still in the startup window with no samples: nothing to
		// recompute yet.
		return false, nil
	}
	if c.ForceUpdate() {
		return true, nil
	}
	// The current window may be empty (just rotated); recompute from
	// the last snapshot so a stale reservation never references
	// workers beyond the new population.
	if c.lastSnapshot != nil {
		if res, err := ComputeReservation(c.lastSnapshot, c.cfg); err == nil {
			c.res.Store(res)
			c.updates.Add(1)
			if c.OnUpdate != nil {
				c.OnUpdate(res)
			}
			return true, nil
		}
	}
	return false, nil
}

// ForceUpdate recomputes the reservation from the current window
// regardless of triggers (used by tests and by operators via the CLI).
func (c *Controller) ForceUpdate() bool {
	snapshot := c.prof.Snapshot()
	res, err := ComputeReservation(snapshot, c.cfg)
	if err != nil {
		return false
	}
	c.res.Store(res)
	c.lastSnapshot = snapshot
	c.pressure = false
	c.updates.Add(1)
	c.prof.Rotate()
	if c.OnUpdate != nil {
		c.OnUpdate(res)
	}
	return true
}

// DispatchOrder returns type IDs sorted by ascending profiled service
// time — the order Algorithm 1 scans typed queues in. Unknown types
// are not included (the caller services the UNKNOWN queue on spillway
// cores last).
func (c *Controller) DispatchOrder() []int {
	n := c.prof.NumTypes()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Insertion sort by profiled mean: n is small (request types, not
	// requests) and the order is stable.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && c.prof.MeanService(order[j]) < c.prof.MeanService(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

func demandsOf(stats []TypeStats) []float64 {
	var total float64
	for _, s := range stats {
		total += float64(s.Mean) * s.Ratio
	}
	d := make([]float64, len(stats))
	if total <= 0 {
		return d
	}
	for i, s := range stats {
		d[i] = float64(s.Mean) * s.Ratio / total
	}
	return d
}
