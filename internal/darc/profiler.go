package darc

import "time"

// typeProfile tracks one request type inside the profiler.
type typeProfile struct {
	// ewma is the long-running moving average of service time in
	// nanoseconds (the paper's "moving average of service time").
	ewma float64
	// windowCount counts completions observed in the current profiling
	// window (the paper's occurrence counter).
	windowCount uint64
	// totalCount counts completions across the whole run.
	totalCount uint64
}

// Profiler maintains per-type service-time moving averages and
// occurrence ratios over profiling windows (§3, "Profiling the
// workload and updating reservations"). The dispatcher feeds it a
// sample on every work-completion signal.
type Profiler struct {
	alpha   float64
	types   []typeProfile
	window  uint64 // completions in current window across all types
	unknown uint64 // completions of unclassified requests
}

// NewProfiler creates a profiler for n types with the given EWMA
// weight for new samples.
func NewProfiler(n int, alpha float64) *Profiler {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.05
	}
	return &Profiler{alpha: alpha, types: make([]typeProfile, n)}
}

// NumTypes reports the number of tracked types.
func (p *Profiler) NumTypes() int { return len(p.types) }

// Observe records a completed request's measured service time.
// Unknown-typed requests are counted but do not contribute to any
// type's profile.
func (p *Profiler) Observe(typ int, service time.Duration) {
	p.window++
	if typ < 0 || typ >= len(p.types) {
		p.unknown++
		return
	}
	t := &p.types[typ]
	if t.totalCount == 0 {
		t.ewma = float64(service)
	} else {
		t.ewma += p.alpha * (float64(service) - t.ewma)
	}
	t.windowCount++
	t.totalCount++
}

// WindowSamples reports how many completions the current window has
// accumulated.
func (p *Profiler) WindowSamples() uint64 { return p.window }

// MeanService reports the current moving-average service time for a
// type (0 if never observed).
func (p *Profiler) MeanService(typ int) time.Duration {
	if typ < 0 || typ >= len(p.types) {
		return 0
	}
	return time.Duration(p.types[typ].ewma)
}

// Snapshot produces the per-type statistics for a reservation
// computation: EWMA service time and the occurrence ratio within the
// current window. Types never seen in the window keep ratio 0 (their
// group still receives at least one core by Algorithm 2's minimum).
func (p *Profiler) Snapshot() []TypeStats {
	stats := make([]TypeStats, len(p.types))
	classified := p.window - p.unknown
	for i := range p.types {
		stats[i].Mean = time.Duration(p.types[i].ewma)
		if classified > 0 {
			stats[i].Ratio = float64(p.types[i].windowCount) / float64(classified)
		}
	}
	return stats
}

// Rotate starts a new profiling window: occurrence counters reset, the
// service-time moving averages carry over.
func (p *Profiler) Rotate() {
	for i := range p.types {
		p.types[i].windowCount = 0
	}
	p.window = 0
	p.unknown = 0
}
