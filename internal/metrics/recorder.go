package metrics

import (
	"fmt"
	"time"
)

// SlowdownScale is the fixed-point scale used to record slowdown
// ratios in integer histograms: a slowdown of 1.0 is recorded as 1000.
const SlowdownScale = 1000

// TypeStats aggregates the measurements for one request type.
type TypeStats struct {
	Name        string
	Latency     Histogram // server sojourn time (ns)
	EndToEnd    Histogram // sojourn + configured network RTT (ns)
	Slowdown    Histogram // sojourn / pure service time, scaled by SlowdownScale
	QueueDelay  Histogram // time between arrival and first dispatch (ns)
	Completed   uint64
	Dropped     uint64
	Preemptions uint64
	ServiceSum  time.Duration // total pure service time completed
}

// Recorder collects per-type and aggregate statistics for one
// experiment run. Recording honours a warm-up cutoff: observations of
// requests that arrived before the cutoff are discarded, matching the
// paper's "discard the first 10% of samples".
type Recorder struct {
	types    []*TypeStats
	all      TypeStats
	warmup   time.Duration
	rtt      time.Duration
	started  time.Duration // virtual time recording started (for throughput)
	finished time.Duration
}

// NewRecorder creates a recorder for n request types with the given
// names (names may be nil, in which case types are numbered).
func NewRecorder(n int, names []string) *Recorder {
	r := &Recorder{types: make([]*TypeStats, n)}
	for i := range r.types {
		name := fmt.Sprintf("type%d", i)
		if names != nil && i < len(names) && names[i] != "" {
			name = names[i]
		}
		r.types[i] = &TypeStats{Name: name}
	}
	r.all.Name = "all"
	return r
}

// SetWarmup discards observations whose arrival predates the cutoff.
func (r *Recorder) SetWarmup(d time.Duration) { r.warmup = d }

// Warmup reports the configured warm-up cutoff.
func (r *Recorder) Warmup() time.Duration { return r.warmup }

// SetRTT configures the fixed network round-trip added to the
// end-to-end view (the paper's testbed measured 10µs).
func (r *Recorder) SetRTT(d time.Duration) { r.rtt = d }

// SetSpan records the measured interval for throughput computation:
// from the warm-up cutoff to the experiment horizon.
func (r *Recorder) SetSpan(start, end time.Duration) {
	r.started, r.finished = start, end
}

// NumTypes reports the number of request types being tracked.
func (r *Recorder) NumTypes() int { return len(r.types) }

// Complete records a finished request of the given type.
// arrival/completion are virtual instants; service is the request's
// pure processing demand; preemptions counts scheduler interrupts it
// suffered.
func (r *Recorder) Complete(typ int, arrival, completion time.Duration, service time.Duration, firstDispatch time.Duration, preemptions int) {
	if arrival < r.warmup {
		return
	}
	sojourn := completion - arrival
	queue := firstDispatch - arrival
	var slowdown int64
	if service > 0 {
		slowdown = int64(float64(sojourn) / float64(service) * SlowdownScale)
	} else {
		slowdown = SlowdownScale
	}
	for _, ts := range []*TypeStats{r.typeStats(typ), &r.all} {
		ts.Latency.RecordDuration(sojourn)
		ts.EndToEnd.RecordDuration(sojourn + r.rtt)
		ts.Slowdown.Record(slowdown)
		ts.QueueDelay.RecordDuration(queue)
		ts.Completed++
		ts.Preemptions += uint64(preemptions)
		ts.ServiceSum += service
	}
}

// Drop records a shed request of the given type.
func (r *Recorder) Drop(typ int, arrival time.Duration) {
	if arrival < r.warmup {
		return
	}
	r.typeStats(typ).Dropped++
	r.all.Dropped++
}

func (r *Recorder) typeStats(typ int) *TypeStats {
	if typ < 0 || typ >= len(r.types) {
		// Unknown/unclassified requests are folded into a synthetic
		// last bucket rather than dropped silently.
		if len(r.types) == 0 {
			r.types = append(r.types, &TypeStats{Name: "unknown"})
		}
		return r.types[len(r.types)-1]
	}
	return r.types[typ]
}

// Type returns the statistics for one request type.
func (r *Recorder) Type(i int) *TypeStats { return r.types[i] }

// All returns the aggregate statistics across every type.
func (r *Recorder) All() *TypeStats { return &r.all }

// Throughput reports completed requests per second over the measured
// span, or 0 if the span is degenerate.
func (r *Recorder) Throughput() float64 {
	span := r.finished - r.started
	if span <= 0 {
		return 0
	}
	return float64(r.all.Completed) / span.Seconds()
}

// DropRate reports the fraction of post-warm-up requests that were
// shed.
func (r *Recorder) DropRate() float64 {
	total := r.all.Completed + r.all.Dropped
	if total == 0 {
		return 0
	}
	return float64(r.all.Dropped) / float64(total)
}

// SlowdownAt converts a scaled slowdown histogram quantile into a
// ratio.
func SlowdownAt(ts *TypeStats, q float64) float64 {
	return float64(ts.Slowdown.Quantile(q)) / SlowdownScale
}

// Summary is a flattened result row for reports and CSV output.
type Summary struct {
	Name        string
	Completed   uint64
	Dropped     uint64
	MeanLatency time.Duration
	P50         time.Duration
	P99         time.Duration
	P999        time.Duration
	SlowdownP99 float64
	Slowdown999 float64
	Preemptions uint64
}

// Summarize produces a per-type summary table, ending with the
// aggregate row.
func (r *Recorder) Summarize() []Summary {
	rows := make([]Summary, 0, len(r.types)+1)
	for _, ts := range r.types {
		rows = append(rows, summarize(ts))
	}
	rows = append(rows, summarize(&r.all))
	return rows
}

func summarize(ts *TypeStats) Summary {
	return Summary{
		Name:        ts.Name,
		Completed:   ts.Completed,
		Dropped:     ts.Dropped,
		MeanLatency: time.Duration(ts.Latency.Mean()),
		P50:         ts.Latency.QuantileDuration(0.50),
		P99:         ts.Latency.QuantileDuration(0.99),
		P999:        ts.Latency.QuantileDuration(0.999),
		SlowdownP99: SlowdownAt(ts, 0.99),
		Slowdown999: SlowdownAt(ts, 0.999),
		Preemptions: ts.Preemptions,
	}
}

// TypeNames returns the tracked type names in index order.
func (r *Recorder) TypeNames() []string {
	names := make([]string, len(r.types))
	for i, ts := range r.types {
		names[i] = ts.Name
	}
	return names
}
