package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram reports non-zero stats")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile non-zero")
	}
}

func TestSingleValue(t *testing.T) {
	var h Histogram
	h.Record(12345)
	if h.Count() != 1 {
		t.Fatalf("count %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		v := h.Quantile(q)
		if relErr(v, 12345) > 1.0/32 {
			t.Fatalf("q=%g: %d, want ~12345", q, v)
		}
	}
	if h.Min() != 12345 || h.Max() != 12345 {
		t.Fatalf("min/max %d/%d", h.Min(), h.Max())
	}
}

func relErr(got, want int64) float64 {
	if want == 0 {
		return math.Abs(float64(got))
	}
	return math.Abs(float64(got-want)) / float64(want)
}

func TestExactSmallValues(t *testing.T) {
	// Values below the sub-bucket count are recorded exactly.
	var h Histogram
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("min/max %d/%d", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got < 30 || got > 33 {
		t.Fatalf("median %d, want ~31", got)
	}
}

func TestQuantileAgainstSortedSamples(t *testing.T) {
	check := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v % 10_000_000)
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			rank := int(math.Ceil(q*float64(len(vals)))) - 1
			if rank < 0 {
				rank = 0
			}
			exact := vals[rank]
			got := h.Quantile(q)
			// Histogram guarantees ~1.6% relative error plus the
			// bucket granularity for small values.
			if relErr(got, exact) > 0.04 && abs64(got-exact) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestMeanExact(t *testing.T) {
	var h Histogram
	vals := []int64{5, 100, 2000, 30000, 7}
	var sum int64
	for _, v := range vals {
		h.Record(v)
		sum += v
	}
	want := float64(sum) / float64(len(vals))
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Fatalf("mean %g, want %g", h.Mean(), want)
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatal("negative value not clamped to 0")
	}
}

func TestHugeClamped(t *testing.T) {
	var h Histogram
	h.Record(1 << 62)
	if h.Max() != maxRecordable {
		t.Fatalf("huge value recorded as %d", h.Max())
	}
}

func TestRecordN(t *testing.T) {
	var h Histogram
	h.RecordN(100, 1000)
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if relErr(h.Quantile(0.5), 100) > 1.0/32 {
		t.Fatalf("median %d", h.Quantile(0.5))
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 1000; i++ {
		a.Record(int64(i))
		b.Record(int64(10000 + i))
	}
	a.Merge(&b)
	if a.Count() != 2000 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Min() != 0 || relErr(a.Max(), 10999) > 0.02 {
		t.Fatalf("merged min/max %d/%d", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med > 1100 {
		t.Fatalf("merged median %d, want <=~1000", med)
	}
	// Merging nil/empty is a no-op.
	before := a.Count()
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != before {
		t.Fatal("empty merge changed count")
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear state")
	}
	h.Record(7)
	if h.Count() != 1 || h.Min() != 7 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestDurationHelpers(t *testing.T) {
	var h Histogram
	h.RecordDuration(5 * time.Microsecond)
	got := h.QuantileDuration(0.5)
	if got < 4900*time.Nanosecond || got > 5100*time.Nanosecond {
		t.Fatalf("duration quantile %v", got)
	}
}

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every value's bucket must contain it: lower <= v and the next
	// bucket's lower > v.
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 4095, 4096, 1 << 20, 1<<40 + 12345} {
		idx := countsIndex(v)
		lo := bucketLowerBound(idx)
		hi := bucketLowerBound(idx + 1)
		if v < lo || v >= hi {
			t.Fatalf("value %d mapped to bucket [%d,%d)", v, lo, hi)
		}
	}
}

func TestRelativeErrorBound(t *testing.T) {
	for v := int64(1); v < 1<<30; v = v*3 + 1 {
		idx := countsIndex(v)
		mid := bucketMidpoint(idx)
		if relErr(mid, v) > 1.0/32+0.001 {
			t.Fatalf("midpoint %d for value %d: error %g", mid, v, relErr(mid, v))
		}
	}
}
