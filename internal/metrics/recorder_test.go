package metrics

import (
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(2, []string{"short", "long"})
	r.SetSpan(0, time.Second)
	// Short: arrived 0, dispatched 1µs, completed 2µs, service 1µs.
	r.Complete(0, 0, 2*time.Microsecond, time.Microsecond, time.Microsecond, 0)
	// Long: arrived 0, completed 200µs, service 100µs.
	r.Complete(1, 0, 200*time.Microsecond, 100*time.Microsecond, 100*time.Microsecond, 2)

	short := r.Type(0)
	if short.Name != "short" || short.Completed != 1 {
		t.Fatalf("short stats %+v", short)
	}
	if got := SlowdownAt(short, 1); got < 1.9 || got > 2.1 {
		t.Fatalf("short slowdown %g, want ~2", got)
	}
	long := r.Type(1)
	if got := SlowdownAt(long, 1); got < 1.9 || got > 2.1 {
		t.Fatalf("long slowdown %g, want ~2", got)
	}
	if long.Preemptions != 2 {
		t.Fatalf("long preemptions %d", long.Preemptions)
	}
	all := r.All()
	if all.Completed != 2 {
		t.Fatalf("aggregate completed %d", all.Completed)
	}
	if r.Throughput() != 2 {
		t.Fatalf("throughput %g, want 2 rps", r.Throughput())
	}
}

func TestRecorderWarmupDiscard(t *testing.T) {
	r := NewRecorder(1, nil)
	r.SetWarmup(100 * time.Millisecond)
	r.Complete(0, 50*time.Millisecond, 51*time.Millisecond, time.Millisecond, 50*time.Millisecond, 0)
	if r.All().Completed != 0 {
		t.Fatal("pre-warmup completion recorded")
	}
	r.Drop(0, 50*time.Millisecond)
	if r.All().Dropped != 0 {
		t.Fatal("pre-warmup drop recorded")
	}
	r.Complete(0, 150*time.Millisecond, 151*time.Millisecond, time.Millisecond, 150*time.Millisecond, 0)
	if r.All().Completed != 1 {
		t.Fatal("post-warmup completion not recorded")
	}
}

func TestRecorderRTT(t *testing.T) {
	r := NewRecorder(1, nil)
	r.SetRTT(10 * time.Microsecond)
	r.Complete(0, 0, 5*time.Microsecond, 5*time.Microsecond, 0, 0)
	ts := r.Type(0)
	serverP := ts.Latency.QuantileDuration(1)
	e2eP := ts.EndToEnd.QuantileDuration(1)
	if e2eP-serverP < 9*time.Microsecond {
		t.Fatalf("RTT not reflected: server %v e2e %v", serverP, e2eP)
	}
}

func TestRecorderDropsAndRate(t *testing.T) {
	r := NewRecorder(2, nil)
	r.Complete(0, 0, 1, 1, 0, 0)
	r.Drop(1, 0)
	r.Drop(1, 0)
	r.Drop(1, 0)
	if r.Type(1).Dropped != 3 || r.All().Dropped != 3 {
		t.Fatal("drops miscounted")
	}
	if got := r.DropRate(); got < 0.74 || got > 0.76 {
		t.Fatalf("drop rate %g, want 0.75", got)
	}
}

func TestRecorderUnknownTypeFoldsToLast(t *testing.T) {
	r := NewRecorder(2, nil)
	r.Complete(-1, 0, 10, 10, 0, 0)
	r.Complete(99, 0, 10, 10, 0, 0)
	if r.Type(1).Completed != 2 {
		t.Fatalf("unknown completions went to %d/%d", r.Type(0).Completed, r.Type(1).Completed)
	}
}

func TestZeroServiceSlowdown(t *testing.T) {
	r := NewRecorder(1, nil)
	r.Complete(0, 0, 100, 0, 0, 0)
	if got := SlowdownAt(r.Type(0), 1); got != 1 {
		t.Fatalf("zero-service slowdown %g, want 1", got)
	}
}

func TestQueueDelayRecorded(t *testing.T) {
	r := NewRecorder(1, nil)
	r.Complete(0, 0, 30*time.Microsecond, 10*time.Microsecond, 20*time.Microsecond, 0)
	qd := r.Type(0).QueueDelay.QuantileDuration(1)
	if qd < 19*time.Microsecond || qd > 21*time.Microsecond {
		t.Fatalf("queue delay %v, want ~20µs", qd)
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(2, []string{"a", "b"})
	r.Complete(0, 0, 2*time.Microsecond, time.Microsecond, 0, 0)
	rows := r.Summarize()
	if len(rows) != 3 {
		t.Fatalf("summary rows %d, want 3 (2 types + aggregate)", len(rows))
	}
	if rows[0].Name != "a" || rows[2].Name != "all" {
		t.Fatalf("row names %q/%q", rows[0].Name, rows[2].Name)
	}
	if rows[0].Completed != 1 || rows[1].Completed != 0 {
		t.Fatal("per-type counts wrong")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(100 * time.Millisecond)
	ts.Record(50*time.Millisecond, 0, 10)
	ts.Record(60*time.Millisecond, 0, 20)
	ts.Record(250*time.Millisecond, 0, 100)
	ts.Record(250*time.Millisecond, 1, 7)
	pts := ts.Series(0, 1.0)
	if len(pts) != 3 {
		t.Fatalf("series length %d, want 3 windows", len(pts))
	}
	if pts[0].Count != 2 || pts[0].Value != 20 {
		t.Fatalf("window 0: %+v", pts[0])
	}
	if pts[1].Count != 0 {
		t.Fatalf("gap window should be empty: %+v", pts[1])
	}
	if pts[2].Count != 1 || pts[2].Value != 100 {
		t.Fatalf("window 2: %+v", pts[2])
	}
	other := ts.Series(1, 1.0)
	if other[2].Value != 7 {
		t.Fatalf("type 1 window 2: %+v", other[2])
	}
	if ts.Windows() != 2 {
		t.Fatalf("windows %d, want 2 populated", ts.Windows())
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	if pts := ts.Series(0, 0.5); pts != nil {
		t.Fatalf("empty series returned %v", pts)
	}
}

func TestTimeSeriesDefaultWidth(t *testing.T) {
	ts := NewTimeSeries(0)
	if ts.WindowWidth() <= 0 {
		t.Fatal("non-positive default width")
	}
}

func TestTypeNames(t *testing.T) {
	r := NewRecorder(2, []string{"zeta", "alpha"})
	names := r.TypeNames()
	if len(names) != 2 || names[0] != "zeta" || names[1] != "alpha" {
		t.Fatalf("names %v, want declaration order", names)
	}
}

func TestWarmupAccessor(t *testing.T) {
	r := NewRecorder(1, nil)
	r.SetWarmup(42 * time.Millisecond)
	if r.Warmup() != 42*time.Millisecond {
		t.Fatalf("warmup %v", r.Warmup())
	}
}
