package metrics

import "time"

// TimeSeries buckets observations into fixed-width windows so that
// experiments can report how a quantile evolves over (virtual or real)
// time — the view used by the paper's workload-change experiment
// (Figure 7).
type TimeSeries struct {
	width   time.Duration
	windows map[int64]map[int]*Histogram // window index -> type -> hist
	maxIdx  int64
	minIdx  int64
	seen    bool
}

// NewTimeSeries creates a time series with the given window width.
func NewTimeSeries(width time.Duration) *TimeSeries {
	if width <= 0 {
		width = 100 * time.Millisecond
	}
	return &TimeSeries{width: width, windows: make(map[int64]map[int]*Histogram)}
}

// Record adds an observation of the given type at virtual instant at.
func (t *TimeSeries) Record(at time.Duration, typ int, value int64) {
	idx := int64(at / t.width)
	w := t.windows[idx]
	if w == nil {
		w = make(map[int]*Histogram)
		t.windows[idx] = w
	}
	h := w[typ]
	if h == nil {
		h = &Histogram{}
		w[typ] = h
	}
	h.Record(value)
	if !t.seen || idx < t.minIdx {
		t.minIdx = idx
	}
	if !t.seen || idx > t.maxIdx {
		t.maxIdx = idx
	}
	t.seen = true
}

// Point is one window of a series: the window's start time and the
// requested quantile of the observations recorded in it. Count is the
// number of observations; windows with no observations are emitted
// with Count 0 so gaps are visible.
type Point struct {
	Start    time.Duration
	Value    int64
	Count    uint64
	Quantile float64
}

// Series extracts the quantile track for one type across all windows
// between the first and last observation (of any type).
func (t *TimeSeries) Series(typ int, q float64) []Point {
	if !t.seen {
		return nil
	}
	pts := make([]Point, 0, t.maxIdx-t.minIdx+1)
	for idx := t.minIdx; idx <= t.maxIdx; idx++ {
		p := Point{Start: time.Duration(idx) * t.width, Quantile: q}
		if w := t.windows[idx]; w != nil {
			if h := w[typ]; h != nil {
				p.Value = h.Quantile(q)
				p.Count = h.Count()
			}
		}
		pts = append(pts, p)
	}
	return pts
}

// WindowWidth reports the configured window width.
func (t *TimeSeries) WindowWidth() time.Duration { return t.width }

// Windows reports how many windows hold at least one observation.
func (t *TimeSeries) Windows() int { return len(t.windows) }
