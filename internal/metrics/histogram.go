// Package metrics provides the measurement machinery for experiments:
// HDR-style log-linear histograms with bounded relative error,
// per-request-type recorders for latency and slowdown, and windowed
// time series for experiments that track behaviour over time.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Histogram records int64 values (nanoseconds, or scaled ratios) in
// log-linear buckets with 64 sub-buckets per power of two, giving a
// worst-case relative error of 1/64 (~1.6%) on reported quantiles.
// The zero value is ready to use. Not safe for concurrent use.
type Histogram struct {
	counts []uint64
	count  uint64
	sum    float64
	min    int64
	max    int64
}

const (
	subBucketBits      = 6
	subBucketCount     = 1 << subBucketBits // 64
	subBucketHalfCount = subBucketCount / 2 // 32
	// maxRecordable caps values so indexes stay in range; ~13 days in
	// nanoseconds, far beyond any simulated latency.
	maxRecordable = int64(1) << 50
)

// countsIndex maps a non-negative value to its bucket index.
func countsIndex(v int64) int {
	bucketIdx := bits.Len64(uint64(v)|(subBucketCount-1)) - subBucketBits
	subBucketIdx := int(v >> uint(bucketIdx))
	return (bucketIdx+1)*subBucketHalfCount + (subBucketIdx - subBucketHalfCount)
}

// bucketLowerBound returns the smallest value mapping to index idx.
func bucketLowerBound(idx int) int64 {
	bucketIdx := idx/subBucketHalfCount - 1
	subBucketIdx := idx%subBucketHalfCount + subBucketHalfCount
	if bucketIdx < 0 {
		bucketIdx = 0
		subBucketIdx -= subBucketHalfCount
	}
	return int64(subBucketIdx) << uint(bucketIdx)
}

// bucketMidpoint returns a representative value for index idx, used
// when reporting quantiles.
func bucketMidpoint(idx int) int64 {
	lo := bucketLowerBound(idx)
	bucketIdx := idx / subBucketHalfCount
	if bucketIdx > 0 {
		bucketIdx--
	}
	return lo + (int64(1)<<uint(bucketIdx))/2
}

// Record adds one observation. Negative values are clamped to zero,
// values beyond the recordable maximum are clamped down; both cases
// indicate modelling bugs upstream but must not corrupt the histogram.
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n identical observations.
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	if v > maxRecordable {
		v = maxRecordable
	}
	idx := countsIndex(v)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx] += n
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += float64(v) * float64(n)
}

// RecordDuration adds a duration observation in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the exact mean of recorded observations (the sum is
// tracked outside the buckets), or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest recorded value, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest recorded value, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile reports the value at quantile q in [0, 1], with the
// histogram's relative error. Exact recorded min/max are returned at
// the extremes.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for idx, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketMidpoint(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// QuantileDuration is Quantile for duration-valued histograms.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Merge adds all observations recorded in other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Reset discards all recorded observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// String summarises the histogram for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d mean=%.1f p50=%d p99=%d p999=%d max=%d}",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}
