package kvstore

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	s := New(1)
	s.Put([]byte("k1"), []byte("v1"))
	v, ok := s.Get([]byte("k1"))
	if !ok || string(v) != "v1" {
		t.Fatalf("got %q %v", v, ok)
	}
	if _, ok := s.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
	if s.Len() != 1 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestOverwrite(t *testing.T) {
	s := New(1)
	s.Put([]byte("k"), []byte("a"))
	s.Put([]byte("k"), []byte("b"))
	v, _ := s.Get([]byte("k"))
	if string(v) != "b" {
		t.Fatalf("got %q", v)
	}
	if s.Len() != 1 {
		t.Fatalf("len %d after overwrite", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := New(1)
	s.Put([]byte("k"), []byte("v"))
	if !s.Delete([]byte("k")) {
		t.Fatal("delete failed")
	}
	if s.Delete([]byte("k")) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("deleted key found")
	}
	if s.Len() != 0 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestValueCopied(t *testing.T) {
	s := New(1)
	v := []byte("abc")
	s.Put([]byte("k"), v)
	v[0] = 'X'
	got, _ := s.Get([]byte("k"))
	if string(got) != "abc" {
		t.Fatal("store aliased caller slice")
	}
	got[0] = 'Y'
	again, _ := s.Get([]byte("k"))
	if string(again) != "abc" {
		t.Fatal("store returned aliased slice")
	}
}

func TestScanOrder(t *testing.T) {
	s := New(2)
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, k := range keys {
		s.Put([]byte(k), []byte("v-"+k))
	}
	var visited []string
	s.Scan([]byte("a"), 100, func(k, v []byte) bool {
		visited = append(visited, string(k))
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(visited) != len(want) {
		t.Fatalf("visited %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("order %v, want %v", visited, want)
		}
	}
}

func TestScanStartAndLimit(t *testing.T) {
	s := New(3)
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("key%03d", i)), []byte{byte(i)})
	}
	var first string
	n := s.Scan([]byte("key050"), 10, func(k, v []byte) bool {
		if first == "" {
			first = string(k)
		}
		return true
	})
	if n != 10 || first != "key050" {
		t.Fatalf("n=%d first=%q", n, first)
	}
	// Early stop.
	n = s.Scan(nil, 100, func(k, v []byte) bool { return false })
	if n != 1 {
		t.Fatalf("early-stop visited %d", n)
	}
}

func TestScanCount(t *testing.T) {
	s := New(4)
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), make([]byte, 8))
	}
	entries, total := s.ScanCount(nil, 5)
	if entries != 5 || total != 40 {
		t.Fatalf("entries=%d bytes=%d", entries, total)
	}
}

func TestFirstKey(t *testing.T) {
	s := New(5)
	if s.FirstKey() != nil {
		t.Fatal("empty store has a first key")
	}
	s.Put([]byte("m"), nil)
	s.Put([]byte("a"), nil)
	if string(s.FirstKey()) != "a" {
		t.Fatalf("first key %q", s.FirstKey())
	}
}

// TestAgainstMapModel property-checks the skiplist against a Go map +
// sort model.
func TestAgainstMapModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint8
	}
	check := func(ops []op) bool {
		s := New(42)
		model := map[string]string{}
		for _, o := range ops {
			key := []byte(fmt.Sprintf("k%03d", o.Key))
			switch o.Kind % 3 {
			case 0:
				val := []byte{o.Val}
				s.Put(key, val)
				model[string(key)] = string(val)
			case 1:
				got, ok := s.Get(key)
				want, wantOK := model[string(key)]
				if ok != wantOK || (ok && string(got) != want) {
					return false
				}
			case 2:
				deleted := s.Delete(key)
				_, existed := model[string(key)]
				if deleted != existed {
					return false
				}
				delete(model, string(key))
			}
			if s.Len() != len(model) {
				return false
			}
		}
		// Full scan must match the sorted model.
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okScan := true
		s.Scan(nil, 1<<30, func(k, v []byte) bool {
			if i >= len(keys) || string(k) != keys[i] || string(v) != model[keys[i]] {
				okScan = false
				return false
			}
			i++
			return true
		})
		return okScan && i == len(keys)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReaders(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte{byte(i)}, 4))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := []byte(fmt.Sprintf("k%04d", (i*7+g)%1000))
				if _, ok := s.Get(key); !ok {
					t.Errorf("key %s missing", key)
					return
				}
			}
		}(g)
	}
	// A concurrent writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.Put([]byte(fmt.Sprintf("w%04d", i)), []byte("x"))
		}
	}()
	wg.Wait()
	if s.Len() != 1500 {
		t.Fatalf("len %d", s.Len())
	}
}

func BenchmarkGet(b *testing.B) {
	s := New(1)
	for i := 0; i < 5000; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), make([]byte, 32))
	}
	key := []byte("key2500")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(key)
	}
}

func BenchmarkScan5000(b *testing.B) {
	s := New(1)
	for i := 0; i < 5000; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), make([]byte, 32))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScanCount(nil, 5000)
	}
}
