// Package kvstore is an in-memory ordered key-value store backed by a
// skip list — the from-scratch stand-in for the paper's RocksDB
// service (§5.4.4). GETs are point lookups; SCANs iterate a key range
// in order, so a 5000-key scan genuinely costs orders of magnitude
// more than a GET, reproducing the workload's 420x dispersion.
package kvstore

import (
	"bytes"
	"sync"

	"repro/internal/rng"
)

const maxHeight = 16

type node struct {
	key   []byte
	value []byte
	next  []*node // next[i] is the successor at level i
}

// Store is a concurrency-safe ordered map. Reads take a shared lock,
// writes an exclusive one; the scheduling experiments are read-heavy
// so the coarse lock is not the bottleneck.
type Store struct {
	mu     sync.RWMutex
	head   *node
	height int
	length int
	r      *rng.RNG
}

// New creates an empty store; seed drives the skip list's level
// choices so structures are reproducible.
func New(seed uint64) *Store {
	return &Store{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		r:      rng.New(seed),
	}
}

// Len reports the number of stored keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.length
}

// randomHeight flips a fair coin per level, capped at maxHeight.
func (s *Store) randomHeight() int {
	h := 1
	for h < maxHeight && s.r.Uint32()&1 == 1 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key at level 0
// and fills prev with the rightmost node before key at every level.
func (s *Store) findGreaterOrEqual(key []byte, prev []*node) *node {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Put inserts or overwrites a key. The value slice is copied.
func (s *Store) Put(key, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := make([]*node, maxHeight)
	for i := range prev {
		prev[i] = s.head
	}
	if n := s.findGreaterOrEqual(key, prev); n != nil && bytes.Equal(n.key, key) {
		n.value = append([]byte(nil), value...)
		return
	}
	h := s.randomHeight()
	if h > s.height {
		s.height = h
	}
	n := &node{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		next:  make([]*node, h),
	}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	s.length++
}

// Get returns a copy of the value for key, or nil and false.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.findGreaterOrEqual(key, nil)
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, false
	}
	return append([]byte(nil), n.value...), true
}

// Delete removes a key, reporting whether it existed.
func (s *Store) Delete(key []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := make([]*node, maxHeight)
	for i := range prev {
		prev[i] = s.head
	}
	n := s.findGreaterOrEqual(key, prev)
	if n == nil || !bytes.Equal(n.key, key) {
		return false
	}
	for level := 0; level < len(n.next); level++ {
		if prev[level].next[level] == n {
			prev[level].next[level] = n.next[level]
		}
	}
	s.length--
	return true
}

// Scan visits up to limit keys starting at the first key >= start, in
// ascending order, calling fn for each; fn returning false stops the
// scan. It returns the number of visited entries. The callback must
// not retain the slices.
func (s *Store) Scan(start []byte, limit int, fn func(key, value []byte) bool) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.findGreaterOrEqual(start, nil)
	visited := 0
	for n != nil && visited < limit {
		visited++
		if !fn(n.key, n.value) {
			break
		}
		n = n.next[0]
	}
	return visited
}

// ScanCount is a Scan that only folds the visited values' sizes — the
// cheap aggregate the RocksDB experiment's SCAN performs over 5000
// keys.
func (s *Store) ScanCount(start []byte, limit int) (entries int, bytesTotal int) {
	entries = s.Scan(start, limit, func(_, v []byte) bool {
		bytesTotal += len(v)
		return true
	})
	return entries, bytesTotal
}

// FirstKey returns a copy of the smallest key, or nil if empty.
func (s *Store) FirstKey() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.head.next[0]
	if n == nil {
		return nil
	}
	return append([]byte(nil), n.key...)
}
