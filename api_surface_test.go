package persephone_test

// TestPublicAPISurface pins the root package's exported API in a
// golden file. A deliberate API change regenerates the file with
// `go test . -run PublicAPISurface -update`; an accidental one fails
// here with a diff. The summary deliberately includes exported struct
// fields and drops bodies and unexported details, so internal
// refactors stay invisible while any user-facing change shows up.

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPIGolden = flag.Bool("update", false, "rewrite the API surface golden file")

func TestPublicAPISurface(t *testing.T) {
	lines := apiSurface(t, ".")
	got := strings.Join(lines, "\n") + "\n"
	golden := filepath.Join("testdata", "api_surface.golden")
	if *updateAPIGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d symbols)", golden, len(lines))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v — regenerate with: go test . -run PublicAPISurface -update", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed (run `go test . -run PublicAPISurface -update` if deliberate):\n%s",
			surfaceDiff(string(want), got))
	}
}

// apiSurface renders one sorted line per exported symbol of the
// package in dir: funcs and methods with full signatures, types with
// their kind, each exported struct field, and const/var names.
func apiSurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["persephone"]
	if !ok {
		t.Fatalf("package persephone not found in %s (have %v)", dir, pkgs)
	}
	render := func(n ast.Node) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, n); err != nil {
			t.Fatal(err)
		}
		// Signatures must be single lines for a stable sorted listing.
		return strings.Join(strings.Fields(buf.String()), " ")
	}
	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					recvType := render(d.Recv.List[0].Type)
					if !ast.IsExported(strings.TrimPrefix(recvType, "*")) {
						continue
					}
					lines = append(lines, fmt.Sprintf("method (%s) %s%s", recvType, d.Name.Name, renderSig(render, d.Type)))
					continue
				}
				lines = append(lines, fmt.Sprintf("func %s%s", d.Name.Name, renderSig(render, d.Type)))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						lines = append(lines, typeLines(render, s)...)
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range s.Names {
							if name.IsExported() {
								lines = append(lines, kind+" "+name.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// renderSig prints a func type's parameters and results without the
// leading "func" keyword.
func renderSig(render func(ast.Node) string, ft *ast.FuncType) string {
	return strings.TrimPrefix(render(ft), "func")
}

// typeLines emits the type's header line plus one line per exported
// struct field (field types are API surface; unexported fields and
// method bodies are not).
func typeLines(render func(ast.Node) string, s *ast.TypeSpec) []string {
	name := s.Name.Name
	eq := ""
	if s.Assign.IsValid() {
		eq = "= "
	}
	switch tt := s.Type.(type) {
	case *ast.StructType:
		lines := []string{fmt.Sprintf("type %s %sstruct", name, eq)}
		for _, f := range tt.Fields.List {
			for _, fn := range f.Names {
				if fn.IsExported() {
					lines = append(lines, fmt.Sprintf("field %s.%s %s", name, fn.Name, render(f.Type)))
				}
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{fmt.Sprintf("type %s %sinterface", name, eq)}
		for _, m := range tt.Methods.List {
			for _, mn := range m.Names {
				if mn.IsExported() {
					lines = append(lines, fmt.Sprintf("ifacemethod %s.%s%s", name, mn.Name,
						renderSig(render, m.Type.(*ast.FuncType))))
				}
			}
		}
		return lines
	default:
		return []string{fmt.Sprintf("type %s %s%s", name, eq, render(s.Type))}
	}
}

// surfaceDiff reports the symbols added and removed, which reads
// better than a raw byte diff of two sorted listings.
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		if !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		if !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	if b.Len() == 0 {
		return "(ordering or duplicate-line change)"
	}
	return b.String()
}
