package persephone

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Mix is a workload: a set of request types with occurrence ratios and
// service-time distributions.
type Mix = workload.Mix

// TypeSpec describes one request type in a Mix.
type TypeSpec = workload.TypeSpec

// Re-exported workload constructors (the paper's evaluation mixes).
var (
	// HighBimodal is Table 3's 100x-dispersion workload.
	HighBimodal = workload.HighBimodal
	// ExtremeBimodal is Table 3's 1000x-dispersion workload.
	ExtremeBimodal = workload.ExtremeBimodal
	// TPCC is Table 4's five-transaction workload.
	TPCC = workload.TPCC
	// RocksDB is §5.4.4's 50% GET / 50% SCAN workload.
	RocksDB = workload.RocksDB
	// TwoType builds a custom two-type mix.
	TwoType = workload.TwoType
)

// MixByName resolves a workload name used across the CLIs:
// "high-bimodal", "extreme-bimodal", "tpcc", "rocksdb" (with short
// aliases "high", "extreme", "tpc-c").
func MixByName(name string) (Mix, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "high-bimodal", "high":
		return HighBimodal(), nil
	case "extreme-bimodal", "extreme":
		return ExtremeBimodal(), nil
	case "tpcc", "tpc-c":
		return TPCC(), nil
	case "rocksdb":
		return RocksDB(), nil
	default:
		return Mix{}, fmt.Errorf("persephone: unknown workload %q (high-bimodal, extreme-bimodal, tpcc, rocksdb)", name)
	}
}

// FixedService returns a degenerate service-time distribution, the
// building block for custom mixes.
func FixedService(d time.Duration) rng.Dist { return rng.Fixed(d) }

// ExpService returns an exponential service-time distribution.
func ExpService(mean time.Duration) rng.Dist { return rng.Exponential(mean) }

// SimConfig configures one simulated run.
type SimConfig struct {
	// Workers is the number of simulated cores (paper testbed: 14).
	Workers int
	// Mix is the workload.
	Mix Mix
	// Policy selects the scheduler by name; see ParsePolicySpec.
	Policy string
	// LoadFraction is the offered load as a fraction of the mix's
	// peak for this worker count; Rate (requests/second) overrides it.
	LoadFraction float64
	Rate         float64
	// Duration is the simulated horizon (default 1s); the first 10%
	// is discarded as warm-up.
	Duration time.Duration
	// RTT adds a fixed network round-trip to the end-to-end latency
	// view (the paper's testbed measured 10µs).
	RTT time.Duration
	// Seed makes runs reproducible (default 42).
	Seed uint64
	// ProfileWindow overrides DARC's profiling-window sample count.
	// Zero auto-scales it so the c-FCFS startup phase completes within
	// the warm-up discard (the paper's 50000-sample window assumes 20s
	// runs; shorter runs need proportionally smaller windows).
	ProfileWindow uint64
}

// TypeResult summarises one request type after a run.
type TypeResult struct {
	Name         string
	Completed    uint64
	Dropped      uint64
	P50          time.Duration
	P99          time.Duration
	P999         time.Duration
	SlowdownP999 float64
}

// SimResult summarises a simulated run.
type SimResult struct {
	Policy          string
	OfferedRPS      float64
	ThroughputRPS   float64
	Completed       uint64
	Dropped         uint64
	Utilization     float64
	OverallP999     time.Duration
	OverallSlowdown float64 // p99.9 slowdown across all requests
	Types           []TypeResult
}

// Simulate runs the discrete-event simulator once.
func Simulate(cfg SimConfig) (*SimResult, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 14
	}
	spec, err := ParsePolicySpec(cfg.Policy)
	if err != nil {
		return nil, err
	}
	newPolicy, err := spec.Constructor(cfg.Workers, cfg.Mix, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if spec.Name == "darc" {
		rate := cfg.Rate
		if rate <= 0 {
			rate = cfg.LoadFraction * cfg.Mix.PeakLoad(cfg.Workers)
		}
		newPolicy = darcAutoPolicy(cfg.Workers, len(cfg.Mix.Types), rate, cfg.Duration, cfg.ProfileWindow)
	}
	res, err := cluster.Run(cluster.Config{
		Workers:        cfg.Workers,
		Mix:            cfg.Mix,
		LoadFraction:   cfg.LoadFraction,
		Rate:           cfg.Rate,
		Duration:       cfg.Duration,
		WarmupFraction: 0.1,
		Seed:           cfg.Seed,
		RTT:            cfg.RTT,
		NewPolicy:      newPolicy,
	})
	if err != nil {
		return nil, err
	}
	return buildSimResult(res, len(cfg.Mix.Types)), nil
}

func buildSimResult(res *cluster.Result, numTypes int) *SimResult {
	out := &SimResult{
		Policy:          res.Policy,
		OfferedRPS:      res.OfferedRPS,
		ThroughputRPS:   res.Recorder.Throughput(),
		Completed:       res.Machine.Completed(),
		Dropped:         res.Machine.Dropped(),
		Utilization:     res.Machine.Utilization(),
		OverallP999:     res.Recorder.All().Latency.QuantileDuration(0.999),
		OverallSlowdown: metrics.SlowdownAt(res.Recorder.All(), 0.999),
	}
	for i := 0; i < numTypes; i++ {
		ts := res.Recorder.Type(i)
		out.Types = append(out.Types, TypeResult{
			Name:         ts.Name,
			Completed:    ts.Completed,
			Dropped:      ts.Dropped,
			P50:          ts.Latency.QuantileDuration(0.50),
			P99:          ts.Latency.QuantileDuration(0.99),
			P999:         ts.Latency.QuantileDuration(0.999),
			SlowdownP999: metrics.SlowdownAt(ts, 0.999),
		})
	}
	return out
}

// Trace is a recorded arrival sequence (see cmd/psp-trace and the
// internal/trace package for the CSV format).
type Trace = trace.Trace

// ReadTrace parses a CSV arrival trace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// ReplayTrace replays a recorded arrival sequence through the
// simulator under cfg's policy and worker count. Mix (optional)
// supplies type names; Duration (optional) truncates the replay. The
// DARC profiling window is auto-scaled from the trace's measured rate
// like Simulate does.
func ReplayTrace(tr *Trace, cfg SimConfig) (*SimResult, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("persephone: empty trace")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 14
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	spec, err := ParsePolicySpec(cfg.Policy)
	if err != nil {
		return nil, err
	}
	newPolicy, err := spec.Constructor(cfg.Workers, cfg.Mix, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if spec.Name == "darc" {
		dur := cfg.Duration
		if dur <= 0 {
			dur = tr.Duration()
		}
		newPolicy = darcAutoPolicy(cfg.Workers, tr.NumTypes(), tr.Rate(), dur, cfg.ProfileWindow)
	}
	res, err := cluster.Run(cluster.Config{
		Workers:        cfg.Workers,
		Trace:          tr,
		Mix:            cfg.Mix,
		Duration:       cfg.Duration,
		WarmupFraction: 0.1,
		Seed:           cfg.Seed,
		RTT:            cfg.RTT,
		NewPolicy:      newPolicy,
	})
	if err != nil {
		return nil, err
	}
	return buildSimResult(res, tr.NumTypes()), nil
}

// PolicyNames lists the scheduler names ParsePolicySpec accepts.
func PolicyNames() []string {
	return []string{
		"darc", "darc-static:N", "darc-elastic", "cfcfs", "dfcfs",
		"shenango", "shinjuku-sq", "shinjuku-mq", "ts-ideal:Nus",
		"fp", "sjf", "edf", "drr",
	}
}

// PolicySpec is the structured form of a scheduler selection — the
// typed counterpart of the "name:arg" strings the CLIs accept. Build
// one directly (Name plus the argument field its policy reads) or
// parse the string grammar with ParsePolicySpec; Constructor binds
// the spec to a machine shape.
type PolicySpec struct {
	// Name is the canonical policy name, one of: darc, darc-static,
	// darc-elastic, cfcfs, dfcfs, shenango, shinjuku-sq, shinjuku-mq,
	// ts-ideal, fp, sjf, edf, drr. Empty means darc.
	Name string
	// StaticReserved is darc-static's argument: cores statically
	// reserved for the shortest type.
	StaticReserved int
	// PreemptOverhead is ts-ideal's argument: total preemption
	// overhead charged per context switch.
	PreemptOverhead time.Duration
}

// ParsePolicySpec parses a scheduler name with optional argument.
// Recognized names (case-insensitive):
//
//	darc             the paper's policy with default tuning
//	darc-static:N    N cores statically reserved for the shortest type
//	cfcfs            centralized FCFS
//	dfcfs            decentralized FCFS (RSS)
//	shenango         per-core queues + work stealing
//	shinjuku-sq      preemptive single queue (5µs quantum, 1µs cost)
//	shinjuku-mq      preemptive multi-queue BVT (5µs quantum, 1µs cost)
//	ts-ideal:Nus     idealized preemption with N µs total overhead
//	fp               non-preemptive fixed priority (shortest first)
//	sjf              oracle shortest-job-first
//
// Argument validation that depends on the machine shape (darc-static's
// N <= workers) happens in Constructor.
func ParsePolicySpec(name string) (PolicySpec, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	arg, hasArg := "", false
	if i := strings.IndexByte(n, ':'); i >= 0 {
		n, arg, hasArg = n[:i], n[i+1:], true
	}
	spec := PolicySpec{Name: n}
	switch n {
	case "":
		spec.Name = "darc"
	case "c-fcfs":
		spec.Name = "cfcfs"
	case "d-fcfs":
		spec.Name = "dfcfs"
	case "work-stealing":
		spec.Name = "shenango"
	case "ts-sq":
		spec.Name = "shinjuku-sq"
	case "ts-mq":
		spec.Name = "shinjuku-mq"
	case "darc-static":
		reserved, err := strconv.Atoi(arg)
		if err != nil || reserved < 0 {
			return PolicySpec{}, fmt.Errorf("persephone: darc-static needs :N with N>=0, got %q", arg)
		}
		spec.StaticReserved = reserved
		return spec, nil
	case "ts-ideal":
		if hasArg {
			us, err := strconv.ParseFloat(strings.TrimSuffix(arg, "us"), 64)
			// The bound rejects NaN and infinities too (NaN fails every
			// comparison, so "us < 0" alone would let it through into an
			// undefined float→Duration conversion). 1e9µs ≈ 17min is far
			// beyond any plausible preemption overhead.
			if err != nil || math.IsNaN(us) || us < 0 || us > 1e9 {
				return PolicySpec{}, fmt.Errorf("persephone: ts-ideal needs :Nus, got %q", arg)
			}
			spec.PreemptOverhead = time.Duration(us * float64(time.Microsecond))
		}
		return spec, nil
	case "darc", "cfcfs", "dfcfs", "shenango", "shinjuku-sq", "shinjuku-mq",
		"fp", "fixed-priority", "sjf", "edf", "drr", "darc-elastic":
		if n == "fixed-priority" {
			spec.Name = "fp"
		}
	default:
		return PolicySpec{}, fmt.Errorf("persephone: unknown policy %q (have %v)", name, PolicyNames())
	}
	if hasArg {
		return PolicySpec{}, fmt.Errorf("persephone: policy %q takes no argument, got %q", spec.Name, arg)
	}
	return spec, nil
}

// String renders the spec in the canonical name:arg grammar
// ParsePolicySpec accepts.
func (s PolicySpec) String() string {
	switch s.Name {
	case "darc-static":
		return fmt.Sprintf("darc-static:%d", s.StaticReserved)
	case "ts-ideal":
		if s.PreemptOverhead > 0 {
			return fmt.Sprintf("ts-ideal:%gus", float64(s.PreemptOverhead)/float64(time.Microsecond))
		}
	}
	if s.Name == "" {
		return "darc"
	}
	return s.Name
}

// Constructor binds the spec to a machine shape, returning the policy
// factory the simulator calls per run.
func (s PolicySpec) Constructor(workers int, mix Mix, seed uint64) (func() cluster.Policy, error) {
	means := make([]time.Duration, len(mix.Types))
	for i, t := range mix.Types {
		means[i] = t.Service.Mean()
	}
	switch s.Name {
	case "", "darc":
		return func() cluster.Policy {
			return policy.NewDARC(darc.DefaultConfig(workers), len(mix.Types), 0)
		}, nil
	case "darc-static":
		reserved := s.StaticReserved
		if reserved < 0 || reserved > workers {
			return nil, fmt.Errorf("persephone: darc-static needs 0<=N<=%d, got %d", workers, reserved)
		}
		return func() cluster.Policy {
			return policy.NewDARCStatic(means, reserved, 0)
		}, nil
	case "cfcfs":
		return func() cluster.Policy { return policy.NewCFCFS(0) }, nil
	case "dfcfs":
		return func() cluster.Policy { return policy.NewDFCFS(rng.New(seed+1), 0) }, nil
	case "shenango":
		return func() cluster.Policy {
			return policy.NewWorkStealing(rng.New(seed+2), 0, 100*time.Nanosecond)
		}, nil
	case "shinjuku-sq":
		return func() cluster.Policy {
			return policy.NewTSSingleQueue(policy.TSConfig{Quantum: 5 * time.Microsecond, PreemptCost: time.Microsecond})
		}, nil
	case "shinjuku-mq":
		return func() cluster.Policy {
			return policy.NewTSMultiQueue(policy.TSConfig{Quantum: 5 * time.Microsecond, PreemptCost: time.Microsecond}, len(mix.Types))
		}, nil
	case "ts-ideal":
		total := s.PreemptOverhead
		if total < 0 {
			return nil, fmt.Errorf("persephone: ts-ideal needs PreemptOverhead >= 0, got %v", total)
		}
		return func() cluster.Policy {
			return policy.NewTSIdeal(total/2, total-total/2, 0)
		}, nil
	case "fp":
		return func() cluster.Policy { return policy.NewFixedPriority(means, 0) }, nil
	case "sjf":
		return func() cluster.Policy { return policy.NewSJF(0) }, nil
	case "edf":
		return func() cluster.Policy { return policy.NewEDF(means, 10, 0) }, nil
	case "drr":
		return func() cluster.Policy {
			return policy.NewDRR(len(mix.Types), 10*time.Microsecond, nil, 0)
		}, nil
	case "darc-elastic":
		return func() cluster.Policy {
			return policy.NewElasticDARC(darc.DefaultConfig(workers), len(mix.Types), 0)
		}, nil
	default:
		return nil, fmt.Errorf("persephone: unknown policy %q (have %v)", s.Name, PolicyNames())
	}
}

// darcAutoPolicy builds the DARC constructor used when the plain
// "darc" policy is simulated: its c-FCFS profiling window is
// auto-scaled to half the warm-up arrivals (clamped to [500, 50000])
// so startup profiling finishes inside the 10% warm-up discard and
// cannot pollute the reported tail. A non-zero override (the
// ProfileWindow knob) wins over the auto-scale.
func darcAutoPolicy(workers, numTypes int, rate float64, dur time.Duration, override uint64) func() cluster.Policy {
	window := override
	if window == 0 {
		auto := uint64(rate * dur.Seconds() * 0.1 * 0.5)
		window = minU64(50000, maxU64(500, auto))
	}
	return func() cluster.Policy {
		dcfg := darc.DefaultConfig(workers)
		dcfg.MinWindowSamples = window
		return policy.NewDARC(dcfg, numTypes, 0)
	}
}

// ExperimentOptions tunes RunExperiment; zero value uses defaults (1s
// per load point, the paper's load grid).
type ExperimentOptions = experiments.Options

// ExperimentNames lists the reproducible artifacts ("figure1",
// "table3", ...).
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment regenerates one of the paper's tables or figures and
// prints it to w.
func RunExperiment(name string, opt ExperimentOptions, w io.Writer) error {
	return experiments.Run(name, opt, w)
}

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments(opt ExperimentOptions, w io.Writer) error {
	return experiments.RunAll(opt, w)
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
